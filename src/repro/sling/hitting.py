"""Hitting probabilities and their local-push construction (Section 4.4).

The hitting probability ``h^(ℓ)(v_i, v_k)`` is the probability that a √c-walk
from ``v_i`` occupies ``v_k`` at step ``ℓ``.  SLING stores, for every node
``v_i``, the set ``H(v_i)`` of hitting probabilities larger than a threshold
``θ``; Observation 1 bounds ``|H(v_i)|`` by ``O(1/θ)``.

This module provides

* :class:`HittingProbabilitySet` — the per-node container used by the index,
* :func:`reverse_push` — the per-target local-update traversal that is the
  body of Algorithm 2 (and is reused, slightly modified, by the single-source
  Algorithm 6),
* :func:`build_hitting_sets` — Algorithm 2 proper: run the reverse push from
  every node and transpose the results into per-source sets ``H(v_i)``,
* :func:`exact_near_hops` — Algorithm 5: exact step-1 / step-2 hitting
  probabilities computed on the fly (used by the Section 5.2 space reduction).
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph

__all__ = [
    "HittingProbabilitySet",
    "concatenated_ranges",
    "push_frontier",
    "reverse_push",
    "build_hitting_sets",
    "exact_near_hops",
    "neighborhood_weight",
]

_LevelMap = dict[int, dict[int, float]]


class HittingProbabilitySet:
    """The set ``H(v)`` of approximate hitting probabilities of one node.

    Entries are stored grouped by step: ``levels[ℓ][v_k] = h̃^(ℓ)(v, v_k)``.
    The container is the unit of storage of the SLING index — it is what the
    out-of-core store serialises per node and what both query algorithms
    consume.
    """

    __slots__ = ("_levels",)

    def __init__(self, levels: Mapping[int, Mapping[int, float]] | None = None) -> None:
        self._levels: _LevelMap = {}
        if levels:
            for level, entries in levels.items():
                if entries:
                    self._levels[int(level)] = {
                        int(node): float(value) for node, value in entries.items()
                    }

    # ------------------------------------------------------------------ #
    # Mutation (used only during index construction)
    # ------------------------------------------------------------------ #
    def add(self, level: int, target: int, value: float) -> None:
        """Insert or accumulate one hitting probability."""
        bucket = self._levels.setdefault(int(level), {})
        bucket[int(target)] = bucket.get(int(target), 0.0) + float(value)

    def set(self, level: int, target: int, value: float) -> None:
        """Insert or overwrite one hitting probability."""
        self._levels.setdefault(int(level), {})[int(target)] = float(value)

    def drop_levels(self, levels: Iterable[int]) -> None:
        """Remove whole levels (used by the Section 5.2 space reduction)."""
        for level in list(levels):
            self._levels.pop(int(level), None)

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> _LevelMap:
        """The underlying ``{level: {target: value}}`` mapping (do not mutate)."""
        return self._levels

    def get(self, level: int, target: int, default: float = 0.0) -> float:
        """Return ``h̃^(level)(v, target)`` or ``default`` when absent."""
        return self._levels.get(int(level), {}).get(int(target), default)

    def items(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(level, target, value)`` triples."""
        for level, entries in self._levels.items():
            for target, value in entries.items():
                yield level, target, value

    def level_items(self, level: int) -> dict[int, float]:
        """The entries of one level (empty dict when the level is absent)."""
        return self._levels.get(int(level), {})

    def max_level(self) -> int:
        """The largest step index present (``-1`` for an empty set)."""
        return max(self._levels, default=-1)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._levels.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HittingProbabilitySet):
            return NotImplemented
        return self._levels == other._levels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HittingProbabilitySet(num_entries={len(self)})"

    def total_mass(self, level: int) -> float:
        """Sum of stored probabilities at ``level`` (≤ (√c)^level by Lemma 7)."""
        return float(sum(self._levels.get(int(level), {}).values()))

    def size_bytes(self) -> int:
        """Approximate serialized size: 12 bytes per entry (level, node, value).

        This matches the packed on-disk layout of
        :mod:`repro.sling.storage` and is what the space benchmarks report,
        rather than the (much larger) CPython dict overhead.
        """
        return 12 * len(self)

    def deep_size_bytes(self) -> int:
        """In-memory footprint including Python object overhead."""
        total = sys.getsizeof(self._levels)
        for level, entries in self._levels.items():
            total += sys.getsizeof(level) + sys.getsizeof(entries)
            total += sum(sys.getsizeof(k) + sys.getsizeof(v) for k, v in entries.items())
        return total

    def copy(self) -> "HittingProbabilitySet":
        """Deep copy (levels and entries)."""
        return HittingProbabilitySet(
            {level: dict(entries) for level, entries in self._levels.items()}
        )

    def merged_with(self, other: "HittingProbabilitySet") -> "HittingProbabilitySet":
        """Return a new set whose entries are ``self`` overridden by ``other``."""
        merged = self.copy()
        for level, target, value in other.items():
            merged.set(level, target, value)
        return merged


# --------------------------------------------------------------------------- #
# Shared forward-expansion primitives
# --------------------------------------------------------------------------- #
def concatenated_ranges(
    starts: "np.ndarray", counts: "np.ndarray", total: int | None = None
) -> "np.ndarray":
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` for all ``i``.

    This is the CSR edge-offset gather shared by :func:`push_frontier` and the
    cascade kernel of :mod:`repro.sling.single_source`: given the frontier
    rows' segment ``starts`` and ``counts``, it yields the flat indices of
    every out-edge of the frontier.  Folding the start into the shift first
    means one ``np.repeat`` instead of two:

        repeat(starts, counts) + (arange(total) - repeat(excl_cumsum, counts))
          == repeat(starts - excl_cumsum, counts) + arange(total)

    (integer arithmetic, so the two forms are exactly equal).  Micro-benchmark
    on random CSR shapes: ~1.4x over the two-repeat form at 200 frontier rows
    / 3k edges, ~1.2x at 5k rows / 120k edges.
    """
    if total is None:
        total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifted = starts - (np.cumsum(counts) - counts)
    return np.repeat(shifted, counts) + np.arange(total, dtype=np.int64)


def push_frontier(
    graph: DiGraph,
    frontier_nodes: "np.ndarray",
    frontier_values: "np.ndarray",
    sqrt_c: float,
    scratch: "np.ndarray | None" = None,
) -> tuple["np.ndarray", "np.ndarray"]:
    """Push a weighted frontier one step along out-edges.

    For every frontier node ``v_x`` with mass ``w`` and every out-neighbour
    ``v_y`` of ``v_x``, the result accumulates ``√c · w / |I(v_y)|`` at
    ``v_y``.  This single scatter step is the inner loop shared by
    Algorithm 2 (reverse push), Algorithm 6 (single-source local push) and the
    accuracy-enhancement expansion; it is fully vectorised over the frontier's
    out-edges.

    The scatter is ``np.bincount(successors, weights=..., minlength=n)``,
    which accumulates weights in input order exactly like the
    ``np.add.at`` it replaced — results are bitwise identical — but without
    ufunc-dispatch overhead per element.  ``bincount`` allocates its own
    output, so ``scratch`` (the reusable buffer of the previous
    implementation) is no longer used; the parameter is kept so existing
    callers and stored call sites keep working, and is still validated when
    passed (it must be an all-zeros ``(n,)`` buffer, which it is returned as).

    Returns the new frontier as ``(nodes, values)`` arrays (possibly empty).
    """
    if scratch is not None and scratch.shape != (graph.num_nodes,):
        raise ParameterError(
            f"scratch must have shape ({graph.num_nodes},), got {scratch.shape}"
        )
    out_indptr, out_indices = graph.out_csr()
    in_degrees = graph.in_degrees()
    starts = out_indptr[frontier_nodes]
    counts = out_indptr[frontier_nodes + 1] - starts
    total_edges = int(counts.sum())
    if total_edges == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)
    edge_offsets = concatenated_ranges(starts, counts, total_edges)
    successors = out_indices[edge_offsets]
    contributions = (
        sqrt_c * np.repeat(frontier_values, counts) / in_degrees[successors]
    )
    buffer = np.bincount(successors, weights=contributions, minlength=graph.num_nodes)
    next_nodes = np.flatnonzero(buffer)
    return next_nodes, buffer[next_nodes]


# --------------------------------------------------------------------------- #
# Algorithm 2: reverse local push
# --------------------------------------------------------------------------- #
def reverse_push(
    graph: DiGraph,
    target: int,
    sqrt_c: float,
    theta: float,
    *,
    max_levels: int | None = None,
    scratch: "np.ndarray | None" = None,
) -> _LevelMap:
    """Reverse local-push traversal from ``target`` (the body of Algorithm 2).

    Returns ``{ℓ: {v_x: h̃^(ℓ)(v_x, target)}}`` containing every approximate
    hitting probability *to* ``target`` that exceeds ``theta``.  Entries at or
    below ``theta`` are pruned and not propagated, which yields the one-sided
    error bound of Lemma 7:

        0 ≥ h̃^(ℓ) - h^(ℓ) ≥ -θ (1 - (√c)^ℓ) / (1 - √c).

    Parameters
    ----------
    graph, target:
        The graph and the node all returned probabilities point to.
    sqrt_c:
        ``√c`` — the continuation probability of a √c-walk.
    theta:
        Pruning threshold ``θ``; must be positive so the traversal terminates.
    max_levels:
        Optional hard cap on the number of levels (used by tests; the natural
        geometric decay of the residuals terminates the loop on its own).
    scratch:
        Optional reusable all-zeros ``(n,)`` buffer threaded through
        :func:`push_frontier`; one is allocated per call when absent, so the
        per-level allocation of the original implementation is gone either
        way.  Keep it per-thread when sharing across calls.
    """
    if theta <= 0.0:
        raise ParameterError(f"theta must be positive, got {theta}")
    if not 0.0 < sqrt_c < 1.0:
        raise ParameterError(f"sqrt_c must be in (0, 1), got {sqrt_c}")
    graph.in_degree(target)  # validates the node id
    if scratch is None:
        scratch = np.zeros(graph.num_nodes, dtype=np.float64)

    result: _LevelMap = {}

    # The frontier is kept as (node ids, values); propagation scatters the
    # contributions into a dense buffer, which keeps the per-level work fully
    # vectorised (the bulk of Algorithm 2's O(m/θ) cost).
    frontier_nodes = np.array([int(target)], dtype=np.int64)
    frontier_values = np.array([1.0], dtype=np.float64)
    level = 0
    while frontier_nodes.size:
        if max_levels is not None and level >= max_levels:
            break
        keep = frontier_values > theta
        kept_nodes = frontier_nodes[keep]
        kept_values = frontier_values[keep]
        if kept_nodes.size == 0:
            break
        result[level] = dict(zip(kept_nodes.tolist(), kept_values.tolist()))
        frontier_nodes, frontier_values = push_frontier(
            graph, kept_nodes, kept_values, sqrt_c, scratch=scratch
        )
        level += 1
    return result


def build_hitting_sets(
    graph: DiGraph,
    sqrt_c: float,
    theta: float,
    *,
    targets: Iterable[int] | None = None,
) -> list[HittingProbabilitySet]:
    """Algorithm 2: build ``H(v_i)`` for every node of the graph.

    Runs :func:`reverse_push` from every target node ``v_k`` and transposes
    the per-target results into per-source sets: an entry
    ``h̃^(ℓ)(v_x, v_k)`` produced by the push from ``v_k`` is inserted into
    ``H(v_x)``.

    ``targets`` restricts the set of push sources (used by the parallel
    builder to split work); the returned list still has one entry per graph
    node, with nodes never reached left empty.
    """
    hitting_sets = [HittingProbabilitySet() for _ in range(graph.num_nodes)]
    target_iter = graph.nodes() if targets is None else targets
    # One scratch buffer serves every push of this (single-threaded) build.
    scratch = np.zeros(graph.num_nodes, dtype=np.float64)
    for target in target_iter:
        per_level = reverse_push(graph, int(target), sqrt_c, theta, scratch=scratch)
        for level, entries in per_level.items():
            for source, value in entries.items():
                hitting_sets[source].set(level, int(target), value)
    return hitting_sets


# --------------------------------------------------------------------------- #
# Algorithm 5: exact step-1 / step-2 hitting probabilities
# --------------------------------------------------------------------------- #
def exact_near_hops(graph: DiGraph, node: int, sqrt_c: float) -> _LevelMap:
    """Algorithm 5: exact hitting probabilities from ``node`` at steps 0-2.

    A √c-walk from ``v_i`` hits in-neighbour ``v_x`` at step 1 with
    probability ``√c / |I(v_i)|`` and, through ``v_x``, hits ``v_y ∈ I(v_x)``
    at step 2 with probability ``√c · h^(1)(v_i, v_x) / |I(v_x)|``.  These are
    exact values, so substituting them for the pruned approximations can only
    improve accuracy (Section 5.2).

    Returns ``{0: {node: 1.0}, 1: {...}, 2: {...}}`` (levels with no entries
    are omitted).
    """
    if not 0.0 < sqrt_c < 1.0:
        raise ParameterError(f"sqrt_c must be in (0, 1), got {sqrt_c}")
    result: _LevelMap = {0: {int(node): 1.0}}
    in_neighbors = graph.in_neighbors(node)
    if in_neighbors.shape[0] == 0:
        return result
    step_one_value = sqrt_c / in_neighbors.shape[0]
    step_one: dict[int, float] = {}
    step_two: dict[int, float] = {}
    for first_hop in in_neighbors:
        first_hop = int(first_hop)
        step_one[first_hop] = step_one.get(first_hop, 0.0) + step_one_value
        second_neighbors = graph.in_neighbors(first_hop)
        if second_neighbors.shape[0] == 0:
            continue
        step_two_value = sqrt_c * step_one_value / second_neighbors.shape[0]
        for second_hop in second_neighbors:
            second_hop = int(second_hop)
            step_two[second_hop] = step_two.get(second_hop, 0.0) + step_two_value
    if step_one:
        result[1] = step_one
    if step_two:
        result[2] = step_two
    return result


def neighborhood_weight(graph: DiGraph, node: int) -> int:
    """``η(v_i) = |I(v_i)| + Σ_{v_x ∈ I(v_i)} |I(v_x)|`` (Section 5.2).

    The cost of running Algorithm 5 from ``node`` is linear in this quantity;
    the space reduction only drops step-1/2 entries when ``η(v_i)`` is small
    enough that the on-the-fly recomputation stays within the query budget.
    """
    in_neighbors = graph.in_neighbors(node)
    in_degrees = graph.in_degrees()
    return int(in_neighbors.shape[0] + in_degrees[in_neighbors].sum())


def theoretical_error_bound(sqrt_c: float, theta: float, level: int) -> float:
    """The Lemma-7 bound ``θ (1 - (√c)^ℓ) / (1 - √c)`` on the HP error."""
    return theta * (1.0 - sqrt_c**level) / (1.0 - sqrt_c)


def expected_set_size_bound(sqrt_c: float, theta: float) -> float:
    """Observation-1 bound on ``Σ_ℓ`` of retainable entries, ``1 / ((1-√c)θ)``."""
    if theta <= 0:
        raise ParameterError(f"theta must be positive, got {theta}")
    return 1.0 / ((1.0 - sqrt_c) * theta)


__all__.extend(["theoretical_error_bound", "expected_set_size_bound"])
