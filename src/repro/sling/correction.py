"""Correction factors ``d_k`` (Sections 4.3 and 5.1).

Lemma 4 rewrites SimRank as

    s(v_i, v_j) = Σ_ℓ Σ_k  h^(ℓ)(v_i, v_k) · d_k · h^(ℓ)(v_j, v_k),

where ``d_k`` is the probability that two independent √c-walks started at
``v_k`` never meet again after step 0.  Equation (14) expresses ``d_k``
through the pairwise SimRank of ``v_k``'s in-neighbours:

    d_k = 1 - c/|I(v_k)| - c/|I(v_k)|² · Σ_{v_i ≠ v_j ∈ I(v_k)} s(v_i, v_j)

This module provides

* :func:`estimate_correction_factor` — the per-node Monte-Carlo estimator,
  either with the fixed budget of Algorithm 1 or the adaptive budget of
  Algorithm 4 (the default),
* :func:`estimate_all_correction_factors` — the driver used by the index
  builder, and
* :func:`exact_correction_factors` — an exact computation from a ground-truth
  SimRank matrix, used by tests and by the "exact D" mode of the
  linearization baseline.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph
from .sampling import (
    BernoulliEstimate,
    estimate_bernoulli_mean_adaptive_batch,
    estimate_bernoulli_mean_fixed_batch,
)
from .walks import SqrtCWalker

__all__ = [
    "CorrectionEstimate",
    "estimate_correction_factor",
    "estimate_all_correction_factors",
    "exact_correction_factors",
]


class CorrectionEstimate:
    """Correction factor estimate for one node, with sampling metadata."""

    __slots__ = ("node", "value", "num_samples", "adaptive_phase_used")

    def __init__(
        self, node: int, value: float, num_samples: int, adaptive_phase_used: bool
    ) -> None:
        self.node = node
        self.value = value
        self.num_samples = num_samples
        self.adaptive_phase_used = adaptive_phase_used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorrectionEstimate(node={self.node}, value={self.value:.6f}, "
            f"num_samples={self.num_samples})"
        )


def _correction_from_mu(c: float, in_degree: int, mu: float) -> float:
    """Apply Equation (14): ``d_k = 1 - c/|I| - c·µ`` (clamped to [0, 1])."""
    value = 1.0 - c / in_degree - c * mu
    return min(1.0, max(0.0, value))


def estimate_correction_factor(
    walker: SqrtCWalker,
    node: int,
    epsilon_d: float,
    delta_d: float,
    *,
    adaptive: bool = True,
) -> CorrectionEstimate:
    """Estimate ``d_k`` for a single node with at most ``epsilon_d`` error.

    Parameters
    ----------
    walker:
        √c-walk sampler over the input graph (also fixes the decay ``c``).
    node:
        The node ``v_k``.
    epsilon_d:
        Maximum additive error allowed in ``d̃_k``.
    delta_d:
        Failure probability of the estimate.
    adaptive:
        Use Algorithm 4 (adaptive sample budget, default) instead of the
        fixed-budget Algorithm 1.

    Notes
    -----
    Two structural short-circuits avoid sampling entirely:

    * ``|I(v_k)| = 0``: both √c-walks stop at step 0, so ``d_k = 1`` exactly;
    * ``|I(v_k)| = 1``: the walks can only meet by both advancing to the single
      in-neighbour (probability ``c``), so ``d_k = 1 - c`` exactly.
    """
    if not 0.0 < epsilon_d < 1.0:
        raise ParameterError(f"epsilon_d must be in (0, 1), got {epsilon_d}")
    if not 0.0 < delta_d < 1.0:
        raise ParameterError(f"delta_d must be in (0, 1), got {delta_d}")

    graph = walker.graph
    c = walker.c
    in_neighbors = graph.in_neighbors(node)
    in_degree = int(in_neighbors.shape[0])

    if in_degree == 0:
        return CorrectionEstimate(node, 1.0, 0, False)
    if in_degree == 1:
        return CorrectionEstimate(node, 1.0 - c, 0, False)

    rng = walker._rng  # shared generator keeps the whole build reproducible

    def sample_pair_meets(count: int) -> int:
        """``count`` Bernoulli trials of the quantity µ in Equation (15).

        Each trial picks an ordered pair of in-neighbours uniformly at random
        and succeeds when the two nodes differ *and* their √c-walks meet.
        """
        firsts = in_neighbors[rng.integers(0, in_degree, size=count)]
        seconds = in_neighbors[rng.integers(0, in_degree, size=count)]
        distinct = firsts != seconds
        if not distinct.any():
            return 0
        return walker.count_meeting_pairs(firsts[distinct], seconds[distinct])

    # The correction factor tolerates epsilon_d error when µ is estimated with
    # epsilon_d / c error (Section 4.3).
    mu_epsilon = epsilon_d / c
    estimate: BernoulliEstimate
    if adaptive:
        estimate = estimate_bernoulli_mean_adaptive_batch(
            sample_pair_meets, mu_epsilon, delta_d
        )
    else:
        estimate = estimate_bernoulli_mean_fixed_batch(
            sample_pair_meets, mu_epsilon, delta_d
        )

    value = _correction_from_mu(c, in_degree, estimate.mean)
    return CorrectionEstimate(
        node, value, estimate.num_samples, estimate.adaptive_phase_used
    )


def estimate_all_correction_factors(
    walker: SqrtCWalker,
    epsilon_d: float,
    delta_d: float,
    *,
    adaptive: bool = True,
    nodes: "np.ndarray | list[int] | None" = None,
) -> np.ndarray:
    """Estimate ``d_k`` for every node (or the given subset).

    Returns an ``(n,)`` float array indexed by node id; entries for nodes not
    in ``nodes`` (when a subset is given) are left as ``NaN`` so that partial
    results from parallel workers can be merged safely.
    """
    graph = walker.graph
    values = np.full(graph.num_nodes, np.nan, dtype=np.float64)
    node_iter = graph.nodes() if nodes is None else nodes
    for node in node_iter:
        values[int(node)] = estimate_correction_factor(
            walker, int(node), epsilon_d, delta_d, adaptive=adaptive
        ).value
    return values


def exact_correction_factors(
    graph: DiGraph, simrank_matrix: np.ndarray, c: float
) -> np.ndarray:
    """Compute every ``d_k`` exactly from a ground-truth SimRank matrix.

    Implements Equation (14) directly.  ``simrank_matrix`` must be the
    ``(n, n)`` matrix of exact (or near-exact) SimRank scores, typically from
    :class:`repro.baselines.power.PowerMethod`.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    n = graph.num_nodes
    if simrank_matrix.shape != (n, n):
        raise ParameterError(
            f"simrank_matrix must have shape ({n}, {n}), got {simrank_matrix.shape}"
        )
    values = np.ones(n, dtype=np.float64)
    for node in graph.nodes():
        in_neighbors = graph.in_neighbors(node)
        in_degree = int(in_neighbors.shape[0])
        if in_degree == 0:
            values[node] = 1.0
            continue
        block = simrank_matrix[np.ix_(in_neighbors, in_neighbors)]
        off_diagonal_sum = float(block.sum() - np.trace(block))
        mu = off_diagonal_sum / (in_degree * in_degree)
        values[node] = _correction_from_mu(c, in_degree, mu)
    return values
