"""Packed columnar hitting-set store: the query-time representation of SLING.

The dict-of-dicts :class:`~repro.sling.hitting.HittingProbabilitySet` is the
natural *build-time* container — reverse pushes insert entries one at a time —
but it is a poor *query-time* one: Algorithm 3 degenerates into a Python loop
with two hash probes per entry, and Algorithm 6 rebuilds numpy frontiers with
``np.fromiter`` on every query.  This module provides the frozen columnar
layout both query algorithms actually want:

* :class:`PackedHittingStore` — all hitting sets of an index as four flat
  arrays: per-node ``offsets`` into ``(levels, targets, values)`` columns,
  with each node's entries sorted by the combined key
  ``(level << LEVEL_SHIFT) | target``.  The sorted ``keys`` column is stored
  alongside so queries never recompute it.
* :class:`QueryView` — one node's entries as aligned column slices (zero-copy
  against the store, including a memory-mapped on-disk store), plus the
  copy-on-write ``override`` used to compose the Section-5.2/5.3 per-query
  overlays without rebuilding dicts.
* :func:`intersect_views` — the vectorized Algorithm-3 kernel: a sorted-key
  intersection (binary-search formulation of ``np.intersect1d`` on the
  combined keys) followed by a single dot product with
  ``corrections[targets]``.
* :func:`view_from_hitting_set` — canonical (key-sorted) conversion of a
  dict-based set, used by the compatibility query path and the parity tests.

Because the dict-based reference path converts through
:func:`view_from_hitting_set` and then runs the *same* kernels over the same
canonical ordering, packed and dict answers are bitwise identical — which is
what ``tests/sling/test_packed.py`` asserts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import StorageError
from .hitting import HittingProbabilitySet

__all__ = [
    "LEVEL_SHIFT",
    "TARGET_MASK",
    "PackedHittingStore",
    "QueryView",
    "pack_keys",
    "view_from_hitting_set",
    "intersect_views",
]

#: Bit position of the level in the combined sort key.  Targets are int32
#: node ids (< 2^31), so 40 bits leave the level comfortably clear of them.
LEVEL_SHIFT = 40

#: Mask extracting the target node id from a combined key.
TARGET_MASK = (np.int64(1) << LEVEL_SHIFT) - 1

#: Column dtypes of the packed layout.
_OFFSET_DTYPE = np.int64
_LEVEL_DTYPE = np.int32
_TARGET_DTYPE = np.int32
_VALUE_DTYPE = np.float64
_KEY_DTYPE = np.int64

#: Logical bytes per packed entry (level, target, value) — the quantity the
#: paper's Figure 4 reports and the planner budgets with.
ENTRY_BYTES = 12

#: File names of the persisted columns (shared with :mod:`repro.sling.storage`).
_COLUMN_FILES = {
    "offsets": "sling_offsets.npy",
    "levels": "sling_levels.npy",
    "targets": "sling_targets.npy",
    "values": "sling_values.npy",
    "keys": "sling_keys.npy",
}


def pack_keys(levels: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Combine ``(level, target)`` pairs into sortable int64 keys."""
    return (levels.astype(_KEY_DTYPE) << LEVEL_SHIFT) | targets.astype(_KEY_DTYPE)


class QueryView:
    """One node's hitting set as aligned, key-sorted column slices.

    ``keys``, ``levels``, ``targets`` and ``values`` are parallel arrays
    sorted by ``keys`` (level-major, then target).  Views taken from a store
    are zero-copy slices — including slices of a memory-mapped on-disk store —
    and must never be mutated; :meth:`override` composes per-query overlays
    copy-on-write instead.
    """

    __slots__ = ("keys", "levels", "targets", "values")

    def __init__(
        self,
        keys: np.ndarray,
        levels: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.keys = keys
        self.levels = levels
        self.targets = targets
        self.values = values

    @property
    def num_entries(self) -> int:
        """Number of hitting probabilities in the view."""
        return int(self.keys.shape[0])

    def contains(self, level: int, target: int) -> bool:
        """Whether a positive probability is stored at ``(level, target)``.

        Mirrors the dict path's ``hitting_set.get(level, target) > 0.0``
        membership test (the accuracy enhancement uses exactly this check).
        """
        key = (np.int64(level) << LEVEL_SHIFT) | np.int64(target)
        pos = int(np.searchsorted(self.keys, key))
        return (
            pos < self.keys.shape[0]
            and self.keys[pos] == key
            and self.values[pos] > 0.0
        )

    def level_segments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-level run boundaries as ``(levels, starts, stops)`` arrays.

        Levels are contiguous runs because the view is sorted level-major.
        Exposed separately from :meth:`iter_levels` so the bounded top-k
        cascade can decide which levels to materialise *before* touching any
        (possibly memory-mapped) ``targets`` / ``values`` data.
        """
        levels = self.levels
        if levels.shape[0] == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        boundaries = np.flatnonzero(np.diff(levels)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        stops = np.concatenate((boundaries, [levels.shape[0]]))
        return np.asarray(levels)[starts].astype(np.int64), starts, stops

    def iter_levels(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(level, targets, values)`` per level, ascending.

        Levels are contiguous runs because the view is sorted level-major;
        targets within a level are ascending.  This is the canonical entry
        order shared by the packed and dict query paths.
        """
        run_levels, starts, stops = self.level_segments()
        for level, start, stop in zip(run_levels, starts, stops):
            yield int(level), self.targets[start:stop], self.values[start:stop]

    def override(
        self, entries: Iterable[tuple[int, int, float]]
    ) -> "QueryView":
        """Return a new view with ``entries`` replacing/inserting positions.

        An entry whose ``(level, target)`` position already exists replaces
        the stored value (exact Algorithm-5 values take precedence over the
        stored approximations); new positions are merged in key order.  The
        receiver — possibly a zero-copy store slice — is left untouched.
        Positions within ``entries`` must be distinct.
        """
        entries = list(entries)
        if not entries:
            return self
        new_levels = np.array([e[0] for e in entries], dtype=_LEVEL_DTYPE)
        new_targets = np.array([e[1] for e in entries], dtype=_TARGET_DTYPE)
        new_values = np.array([e[2] for e in entries], dtype=_VALUE_DTYPE)
        new_keys = pack_keys(new_levels, new_targets)
        order = np.argsort(new_keys)
        new_keys = new_keys[order]
        new_levels = new_levels[order]
        new_targets = new_targets[order]
        new_values = new_values[order]

        base_keys = np.asarray(self.keys)
        if base_keys.shape[0]:
            pos = np.searchsorted(base_keys, new_keys)
            hit = pos < base_keys.shape[0]
            hit[hit] = base_keys[pos[hit]] == new_keys[hit]
        else:
            pos = np.zeros(new_keys.shape[0], dtype=np.int64)
            hit = np.zeros(new_keys.shape[0], dtype=bool)

        values = np.array(self.values, dtype=_VALUE_DTYPE, copy=True)
        values[pos[hit]] = new_values[hit]
        if bool(hit.all()):
            return QueryView(
                base_keys, np.asarray(self.levels), np.asarray(self.targets), values
            )
        miss = ~hit
        where = pos[miss]
        return QueryView(
            np.insert(base_keys, where, new_keys[miss]),
            np.insert(np.asarray(self.levels), where, new_levels[miss]),
            np.insert(np.asarray(self.targets), where, new_targets[miss]),
            np.insert(values, where, new_values[miss]),
        )

    def to_hitting_set(self) -> HittingProbabilitySet:
        """Materialise the view as a dict-based :class:`HittingProbabilitySet`."""
        hitting_set = HittingProbabilitySet()
        for level, target, value in zip(self.levels, self.targets, self.values):
            hitting_set.set(int(level), int(target), float(value))
        return hitting_set

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryView(num_entries={self.num_entries})"


def view_from_hitting_set(hitting_set: HittingProbabilitySet) -> QueryView:
    """Canonical (key-sorted) columnar view of a dict-based hitting set.

    This is the bridge between the mutable build-time container and the
    packed query kernels: the dict-based compatibility path converts through
    here, so both paths run the same kernels over identically ordered arrays
    and produce bitwise-identical answers.
    """
    total = len(hitting_set)
    levels = np.empty(total, dtype=_LEVEL_DTYPE)
    targets = np.empty(total, dtype=_TARGET_DTYPE)
    values = np.empty(total, dtype=_VALUE_DTYPE)
    cursor = 0
    for level, entries in hitting_set.levels.items():
        count = len(entries)
        levels[cursor : cursor + count] = level
        targets[cursor : cursor + count] = np.fromiter(
            entries.keys(), dtype=np.int64, count=count
        )
        values[cursor : cursor + count] = np.fromiter(
            entries.values(), dtype=np.float64, count=count
        )
        cursor += count
    keys = pack_keys(levels, targets)
    order = np.argsort(keys)
    return QueryView(keys[order], levels[order], targets[order], values[order])


def intersect_views(
    view_u: QueryView, view_v: QueryView, corrections: np.ndarray
) -> float:
    """Algorithm 3 on two packed views: ``Σ h̃^(ℓ)(u,k) · d̃_k · h̃^(ℓ)(v,k)``.

    The intersection on combined keys is the binary-search formulation of
    ``np.intersect1d(keys_u, keys_v, assume_unique=True)``: the smaller side
    probes the larger with one :func:`numpy.searchsorted`, which avoids the
    concatenate-and-sort ``intersect1d`` performs and keeps the warm-path
    allocation count constant.  The matched values collapse into a single dot
    product with ``corrections[targets]``.
    """
    keys_u, keys_v = view_u.keys, view_v.keys
    if keys_u.shape[0] == 0 or keys_v.shape[0] == 0:
        return 0.0
    if keys_u.shape[0] <= keys_v.shape[0]:
        probe_keys, probe_values = keys_u, view_u.values
        base_keys, base_values = keys_v, view_v.values
    else:
        probe_keys, probe_values = keys_v, view_v.values
        base_keys, base_values = keys_u, view_u.values
    pos = np.searchsorted(base_keys, probe_keys)
    valid = pos < base_keys.shape[0]
    if not bool(valid.all()):
        pos = pos[valid]
        probe_keys = probe_keys[valid]
        probe_values = np.asarray(probe_values)[valid]
    hit = base_keys[pos] == probe_keys
    if not bool(hit.any()):
        return 0.0
    targets = probe_keys[hit] & TARGET_MASK
    score = float(
        np.dot(
            np.asarray(probe_values)[hit] * corrections[targets],
            np.asarray(base_values)[pos[hit]],
        )
    )
    return min(1.0, score)


class PackedHittingStore:
    """All hitting sets of one index as flat, query-native numpy columns.

    Layout: node ``v``'s entries live at ``offsets[v]:offsets[v+1]`` in the
    parallel ``levels`` / ``targets`` / ``values`` columns, sorted by the
    combined key ``(level << LEVEL_SHIFT) | target`` (also stored, as
    ``keys``).  The store is frozen: queries only ever slice it, so it can be
    shared across threads and backed by memory-mapped files without locking.
    """

    __slots__ = ("offsets", "levels", "targets", "values", "keys", "_level_stats")

    def __init__(
        self,
        offsets: np.ndarray,
        levels: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
        keys: np.ndarray | None = None,
    ) -> None:
        self.offsets = offsets
        self.levels = levels
        self.targets = targets
        self.values = values
        self.keys = pack_keys(levels, targets) if keys is None else keys
        self._level_stats: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_hitting_sets(
        cls, hitting_sets: Sequence[HittingProbabilitySet]
    ) -> "PackedHittingStore":
        """Freeze build-time dict sets into the packed columnar layout."""
        num_nodes = len(hitting_sets)
        counts = np.fromiter(
            (len(hs) for hs in hitting_sets), dtype=_OFFSET_DTYPE, count=num_nodes
        )
        offsets = np.zeros(num_nodes + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        levels = np.empty(total, dtype=_LEVEL_DTYPE)
        targets = np.empty(total, dtype=_TARGET_DTYPE)
        values = np.empty(total, dtype=_VALUE_DTYPE)
        cursor = 0
        for hitting_set in hitting_sets:
            for level, target, value in hitting_set.items():
                levels[cursor] = level
                targets[cursor] = target
                values[cursor] = value
                cursor += 1
        return cls.from_columns(offsets, levels, targets, values)

    @classmethod
    def from_columns(
        cls,
        offsets: np.ndarray,
        levels: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> "PackedHittingStore":
        """Build a store from node-grouped columns in arbitrary entry order.

        Entries must already be grouped per node according to ``offsets``;
        this sorts each node's segment by the combined key (one global stable
        lexsort, no Python loop).
        """
        offsets = np.asarray(offsets, dtype=_OFFSET_DTYPE)
        levels = np.asarray(levels, dtype=_LEVEL_DTYPE)
        targets = np.asarray(targets, dtype=_TARGET_DTYPE)
        values = np.asarray(values, dtype=_VALUE_DTYPE)
        keys = pack_keys(levels, targets)
        node_ids = np.repeat(
            np.arange(offsets.shape[0] - 1, dtype=np.int64), np.diff(offsets)
        )
        order = np.lexsort((keys, node_ids))
        return cls(offsets, levels[order], targets[order], values[order], keys[order])

    @classmethod
    def from_records(
        cls,
        num_nodes: int,
        sources: np.ndarray,
        levels: np.ndarray,
        targets: np.ndarray,
        values: np.ndarray,
    ) -> "PackedHittingStore":
        """Build a store from flat ``(source, level, target, value)`` records.

        Used by the out-of-core builder: the externally merged record stream
        becomes the packed index directly, with no dict round-trip.
        """
        sources = np.asarray(sources, dtype=np.int64)
        counts = np.bincount(sources, minlength=num_nodes)
        offsets = np.zeros(num_nodes + 1, dtype=_OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        levels = np.asarray(levels, dtype=_LEVEL_DTYPE)
        targets = np.asarray(targets, dtype=_TARGET_DTYPE)
        values = np.asarray(values, dtype=_VALUE_DTYPE)
        keys = pack_keys(levels, targets)
        order = np.lexsort((keys, sources))
        return cls(offsets, levels[order], targets[order], values[order], keys[order])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes the store covers."""
        return int(self.offsets.shape[0] - 1)

    @property
    def num_entries(self) -> int:
        """Total number of stored hitting probabilities (O(1))."""
        return int(self.values.shape[0])

    def entry_counts(self) -> np.ndarray:
        """Stored entries per node as an ``(n,)`` array."""
        return np.diff(self.offsets)

    def size_bytes(self) -> int:
        """Logical packed size: 12 bytes per (level, target, value) entry.

        This is the Figure-4 accounting unit shared with
        :meth:`~repro.sling.hitting.HittingProbabilitySet.size_bytes`.
        """
        return ENTRY_BYTES * self.num_entries

    @property
    def nbytes(self) -> int:
        """Actual footprint of all columns, including the keys column."""
        return int(
            self.offsets.nbytes
            + self.levels.nbytes
            + self.targets.nbytes
            + self.values.nbytes
            + self.keys.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedHittingStore(num_nodes={self.num_nodes}, "
            f"num_entries={self.num_entries})"
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def slice_bounds(self, node: int) -> tuple[int, int]:
        """The ``[start, stop)`` range of ``node``'s entries in the columns."""
        return int(self.offsets[node]), int(self.offsets[node + 1])

    def node_entries(self, node: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(levels, targets, values)`` slices for one node."""
        start, stop = self.slice_bounds(node)
        return (
            self.levels[start:stop],
            self.targets[start:stop],
            self.values[start:stop],
        )

    def node_view(self, node: int) -> QueryView:
        """Zero-copy :class:`QueryView` of one node's entries."""
        start, stop = self.slice_bounds(node)
        return QueryView(
            self.keys[start:stop],
            self.levels[start:stop],
            self.targets[start:stop],
            self.values[start:stop],
        )

    def hitting_set(self, node: int) -> HittingProbabilitySet:
        """Materialise one node's entries as a dict-based set (compat path)."""
        return self.node_view(node).to_hitting_set()

    # ------------------------------------------------------------------ #
    # Per-level residual-mass metadata (bounded top-k pruning)
    # ------------------------------------------------------------------ #
    def level_stats(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-``(node, level)`` residual-mass summaries of the whole store.

        Returns ``(stat_offsets, stat_levels, stat_totals, stat_maxima)``:
        node ``v``'s per-level groups live at
        ``stat_offsets[v]:stat_offsets[v+1]`` in the parallel ``stat_levels``
        / ``stat_totals`` / ``stat_maxima`` arrays, where for each stored
        level ``ℓ`` of ``v``, ``stat_totals`` is ``Σ_k h̃^(ℓ)(v, k)`` and
        ``stat_maxima`` is ``max_k h̃^(ℓ)(v, k)``.

        These are the residual-mass upper bounds the bounded top-k cascade
        prunes with: the step-ℓ mass a single-source query from ``v`` can
        still deliver to any *one* node is at most
        ``(√c)^ℓ · max_k h̃^(ℓ)(v,k) · max_j d̃_j`` (each pushed unit spreads
        over at most ``(√c)^ℓ`` of total hitting probability, Lemma 7), and
        the aggregate over all nodes is bounded by the same expression with
        the total in place of the max.

        Computed lazily in one vectorised pass over the columns (entries are
        sorted node-major then level-major, so groups are contiguous runs)
        and cached; for a memory-mapped store this faults the ``levels`` and
        ``values`` columns in once.  The cache is in plain RAM and sized
        ``O(n · levels)``, far below the entry columns themselves.
        """
        if self._level_stats is None:
            num_nodes = self.num_nodes
            stat_offsets = np.zeros(num_nodes + 1, dtype=np.int64)
            if self.num_entries == 0:
                empty_levels = np.empty(0, dtype=np.int64)
                empty_stats = np.empty(0, dtype=np.float64)
                self._level_stats = (
                    stat_offsets, empty_levels, empty_stats, empty_stats
                )
            else:
                node_ids = np.repeat(
                    np.arange(num_nodes, dtype=np.int64), np.diff(self.offsets)
                )
                levels = np.asarray(self.levels, dtype=np.int64)
                values = np.asarray(self.values, dtype=np.float64)
                change = np.flatnonzero(
                    (np.diff(node_ids) != 0) | (np.diff(levels) != 0)
                )
                group_starts = np.concatenate(
                    (np.zeros(1, dtype=np.int64), change + 1)
                )
                group_counts = np.bincount(
                    node_ids[group_starts], minlength=num_nodes
                )
                np.cumsum(group_counts, out=stat_offsets[1:])
                self._level_stats = (
                    stat_offsets,
                    levels[group_starts],
                    np.add.reduceat(values, group_starts),
                    np.maximum.reduceat(values, group_starts),
                )
        return self._level_stats

    def node_level_stats(
        self, node: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One node's ``(levels, totals, maxima)`` residual-mass summaries."""
        stat_offsets, stat_levels, stat_totals, stat_maxima = self.level_stats()
        start, stop = int(stat_offsets[node]), int(stat_offsets[node + 1])
        return (
            stat_levels[start:stop],
            stat_totals[start:stop],
            stat_maxima[start:stop],
        )

    def to_hitting_sets(self) -> list[HittingProbabilitySet]:
        """Materialise every node's set (the lazy ``hitting_sets`` view)."""
        return [self.hitting_set(node) for node in range(self.num_nodes)]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> None:
        """Write each column as an uncompressed ``.npy`` file.

        Plain ``.npy`` files (rather than one ``.npz`` archive) are what
        makes the zero-copy load path possible: ``np.load(..., mmap_mode)``
        only memory-maps standalone ``.npy`` files.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for attribute, filename in _COLUMN_FILES.items():
            # Write-to-temp + atomic rename: saving a store whose columns are
            # memory-mapped from these very files must not truncate the file
            # it is still reading from (the old mapping keeps the replaced
            # inode alive), and a crash mid-write cannot corrupt the index.
            temporary = directory / ("tmp." + filename)  # keeps the .npy suffix
            np.save(temporary, getattr(self, attribute))
            temporary.replace(directory / filename)

    @classmethod
    def load(
        cls, directory: str | Path, *, mmap_mode: str | None = "r"
    ) -> "PackedHittingStore":
        """Load a saved store, memory-mapping the columns by default.

        With ``mmap_mode="r"`` no column data is read eagerly — the load cost
        is a handful of header reads regardless of index size, and queries
        fault in only the pages their slices touch (the Section-5.4
        out-of-core story with zero per-query deserialisation).
        """
        directory = Path(directory)
        columns: dict[str, np.ndarray] = {}
        for attribute, filename in _COLUMN_FILES.items():
            path = directory / filename
            if not path.exists():
                raise StorageError(f"missing packed index column at {path}")
            try:
                columns[attribute] = np.load(path, mmap_mode=mmap_mode)
            except ValueError:
                # Zero-length columns cannot be memory-mapped; fall back to a
                # regular (still tiny) read.
                columns[attribute] = np.load(path)
        return cls(**columns)

    # ------------------------------------------------------------------ #
    # Invariants (exercised by the property tests)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Raise :class:`StorageError` when the packed layout is malformed."""
        offsets = np.asarray(self.offsets)
        if offsets.ndim != 1 or offsets.shape[0] < 1:
            raise StorageError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or int(offsets[-1]) != self.num_entries:
            raise StorageError("offsets must start at 0 and end at num_entries")
        if np.any(np.diff(offsets) < 0):
            raise StorageError("offsets must be monotone non-decreasing")
        lengths = {self.levels.shape[0], self.targets.shape[0],
                   self.values.shape[0], self.keys.shape[0]}
        if lengths != {self.num_entries}:
            raise StorageError("column lengths disagree")
        if not np.array_equal(
            np.asarray(self.keys), pack_keys(self.levels, self.targets)
        ):
            raise StorageError("keys column disagrees with (levels, targets)")
        for node in range(self.num_nodes):
            start, stop = self.slice_bounds(node)
            segment = self.keys[start:stop]
            if segment.shape[0] > 1 and np.any(np.diff(segment) <= 0):
                raise StorageError(
                    f"keys of node {node} are not strictly increasing"
                )
