"""Parameter derivation for the SLING index (Theorem 1).

Theorem 1 states that if each correction factor is estimated with error at
most ``ε_d`` (failure probability ``δ_d ≤ δ/n``) and the hitting-probability
threshold is ``θ``, then every SimRank score returned by Algorithm 3 has
additive error at most ``ε`` provided

    ε_d / (1 - c)  +  2√c · θ / ((1 - √c)(1 - c))  ≤  ε.

:class:`SlingParameters` turns a user-facing accuracy target ``(ε, δ)`` into
the internal knobs ``(ε_d, θ, δ_d)`` by splitting the error budget, and
validates that the resulting configuration indeed satisfies the inequality.
The split mirrors the paper's experimental setting: with ``c = 0.6``,
``ε = 0.025``, ``ε_d = 0.005`` and ``θ = 0.000725`` the bound holds, and those
are exactly the values :func:`SlingParameters.paper_defaults` reproduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ParameterError

__all__ = ["SlingParameters", "theorem1_error_bound"]


def theorem1_error_bound(c: float, epsilon_d: float, theta: float) -> float:
    """Left-hand side of the Theorem-1 inequality (the guaranteed error)."""
    sqrt_c = math.sqrt(c)
    return epsilon_d / (1.0 - c) + 2.0 * sqrt_c * theta / ((1.0 - sqrt_c) * (1.0 - c))


@dataclass(frozen=True)
class SlingParameters:
    """Fully resolved parameter set of a SLING index build.

    Attributes
    ----------
    c:
        SimRank decay factor.
    epsilon:
        Worst-case additive error guaranteed for every returned score.
    delta:
        Failure probability of the whole preprocessing phase.
    epsilon_d:
        Additive error allowed in each correction factor ``d̃_k``.
    theta:
        Hitting-probability pruning threshold ``θ``.
    delta_d:
        Per-node failure probability (``δ / n`` by Theorem 1).
    """

    c: float
    epsilon: float
    delta: float
    epsilon_d: float
    theta: float
    delta_d: float

    def __post_init__(self) -> None:
        if not 0.0 < self.c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {self.c}")
        if not 0.0 < self.epsilon < 1.0:
            raise ParameterError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ParameterError(f"delta must be in (0, 1), got {self.delta}")
        if not 0.0 < self.epsilon_d < 1.0:
            raise ParameterError(f"epsilon_d must be in (0, 1), got {self.epsilon_d}")
        if self.theta <= 0.0:
            raise ParameterError(f"theta must be positive, got {self.theta}")
        if not 0.0 < self.delta_d <= self.delta:
            raise ParameterError(
                f"delta_d must be in (0, delta], got {self.delta_d} (delta={self.delta})"
            )
        bound = theorem1_error_bound(self.c, self.epsilon_d, self.theta)
        if bound > self.epsilon + 1e-12:
            raise ParameterError(
                "the Theorem-1 inequality is violated: "
                f"epsilon_d/(1-c) + 2*sqrt(c)*theta/((1-sqrt(c))(1-c)) = {bound:.6f} "
                f"> epsilon = {self.epsilon}"
            )

    # ------------------------------------------------------------------ #
    @property
    def sqrt_c(self) -> float:
        """``√c`` — the per-step continuation probability of a √c-walk."""
        return math.sqrt(self.c)

    @property
    def guaranteed_error(self) -> float:
        """The error actually guaranteed by the chosen ``(ε_d, θ)`` pair."""
        return theorem1_error_bound(self.c, self.epsilon_d, self.theta)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_accuracy_target(
        cls,
        *,
        num_nodes: int,
        c: float = 0.6,
        epsilon: float = 0.025,
        delta: float | None = None,
        error_split: float = 0.5,
    ) -> "SlingParameters":
        """Derive ``(ε_d, θ, δ_d)`` from a target ``(ε, δ)``.

        Parameters
        ----------
        num_nodes:
            Number of graph nodes ``n``; ``δ_d`` is set to ``δ / n`` so the
            union bound over all correction factors holds (Theorem 1).
        c, epsilon:
            Decay factor and worst-case error target.
        delta:
            Preprocessing failure probability; the paper's experiments use
            ``δ = 1/n`` (so ``δ_d = 1/n²``), which is the default here.
        error_split:
            Fraction of the error budget assigned to the correction factors;
            the remainder is assigned to the hitting probabilities.
        """
        if num_nodes <= 0:
            raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
        if not 0.0 < error_split < 1.0:
            raise ParameterError(
                f"error_split must be in (0, 1), got {error_split}"
            )
        if delta is None:
            delta = 1.0 / max(2, num_nodes)
        sqrt_c = math.sqrt(c)
        epsilon_d = error_split * epsilon * (1.0 - c)
        theta = (
            (1.0 - error_split)
            * epsilon
            * (1.0 - sqrt_c)
            * (1.0 - c)
            / (2.0 * sqrt_c)
        )
        delta_d = delta / num_nodes
        return cls(
            c=c,
            epsilon=epsilon,
            delta=delta,
            epsilon_d=epsilon_d,
            theta=theta,
            delta_d=delta_d,
        )

    @classmethod
    def paper_defaults(cls, num_nodes: int) -> "SlingParameters":
        """The exact experimental setting of Section 7.1.

        ``c = 0.6``, ``ε = 0.025``, ``ε_d = 0.005``, ``θ = 0.000725`` and
        ``δ_d = 1/n²``.
        """
        if num_nodes <= 0:
            raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
        n = max(2, num_nodes)
        return cls(
            c=0.6,
            epsilon=0.025,
            delta=1.0 / n,
            epsilon_d=0.005,
            theta=0.000725,
            delta_d=1.0 / (n * n),
        )

    def scaled(self, *, epsilon: float) -> "SlingParameters":
        """Return a copy re-derived for a different accuracy target ``ε``."""
        ratio = epsilon / self.epsilon
        return SlingParameters(
            c=self.c,
            epsilon=epsilon,
            delta=self.delta,
            epsilon_d=self.epsilon_d * ratio,
            theta=self.theta * ratio,
            delta_d=self.delta_d,
        )
