"""√c-walk sampling (Section 4.1 of the paper).

A √c-walk from a node ``u`` is a reverse random walk that, at every step,
terminates with probability ``1 - √c`` and otherwise moves to a uniformly
random in-neighbour of the current node.  Lemma 3 shows that the SimRank score
``s(u, v)`` equals the probability that two independent √c-walks from ``u``
and ``v`` *meet*, i.e. occupy the same node at the same step index.

The walker here is used by

* the correction-factor estimators (Algorithms 1 and 4), which sample pairs of
  √c-walks from the in-neighbours of a node, and
* the Monte-Carlo SimRank estimator ``estimate_simrank`` used as a sanity
  oracle in tests (the "MC + √c-walk" variant discussed at the end of
  Section 4.1).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph

__all__ = ["SqrtCWalker", "walks_meet"]


def walks_meet(walk_a: Sequence[int], walk_b: Sequence[int]) -> bool:
    """Return ``True`` when the two walks occupy the same node at some step.

    Step ``ℓ`` of each walk is its ``ℓ``-th element; the walks meet when there
    is an ``ℓ`` present in *both* walks with identical nodes.
    """
    for node_a, node_b in zip(walk_a, walk_b):
        if node_a == node_b:
            return True
    return False


class SqrtCWalker:
    """Samples √c-walks on a :class:`~repro.graphs.DiGraph`.

    Parameters
    ----------
    graph:
        The input graph.
    c:
        SimRank decay factor, ``0 < c < 1`` (the paper uses ``c = 0.6``).
    seed:
        Seed (or :class:`numpy.random.Generator`) for reproducible sampling.
    max_length:
        Hard cap on walk length, purely a safety valve: a √c-walk terminates
        naturally with probability ``1 - √c`` per step, so the cap is
        essentially never reached with the default of ``16 / (1 - √c)``.
    """

    def __init__(
        self,
        graph: DiGraph,
        c: float = 0.6,
        *,
        seed: int | np.random.Generator | None = None,
        max_length: int | None = None,
    ) -> None:
        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        self._graph = graph
        self._c = float(c)
        self._sqrt_c = math.sqrt(c)
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        if max_length is None:
            max_length = max(64, int(16.0 / (1.0 - self._sqrt_c)))
        if max_length < 1:
            raise ParameterError(f"max_length must be >= 1, got {max_length}")
        self._max_length = int(max_length)

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DiGraph:
        """The graph the walker samples on."""
        return self._graph

    @property
    def c(self) -> float:
        """The SimRank decay factor."""
        return self._c

    @property
    def sqrt_c(self) -> float:
        """``√c`` — the per-step continuation probability."""
        return self._sqrt_c

    @property
    def expected_length(self) -> float:
        """Expected number of steps after step 0, ``√c / (1 - √c)``."""
        return self._sqrt_c / (1.0 - self._sqrt_c)

    # ------------------------------------------------------------------ #
    def walk(self, start: int) -> list[int]:
        """Sample one √c-walk; element ``ℓ`` is the node at step ``ℓ``.

        The walk always contains at least the starting node (its 0-th step)
        and stops early at nodes with no in-neighbours.
        """
        graph = self._graph
        rng = self._rng
        sqrt_c = self._sqrt_c
        current = int(start)
        graph.in_degree(current)  # raises NodeNotFoundError for bad input
        steps = [current]
        while len(steps) < self._max_length:
            if rng.random() >= sqrt_c:
                break
            in_nb = graph.in_neighbors(current)
            if in_nb.shape[0] == 0:
                break
            current = int(in_nb[int(rng.integers(0, in_nb.shape[0]))])
            steps.append(current)
        return steps

    def walk_pair_meets(self, start_a: int, start_b: int) -> bool:
        """Sample two independent √c-walks and report whether they meet.

        The walks are generated lock-step so the common case (an early
        mismatch followed by a termination) avoids materialising full walks.
        """
        graph = self._graph
        rng = self._rng
        sqrt_c = self._sqrt_c
        node_a = int(start_a)
        node_b = int(start_b)
        graph.in_degree(node_a)
        graph.in_degree(node_b)
        for _ in range(self._max_length):
            if node_a == node_b:
                return True
            # Each walk independently decides whether to continue.
            continue_a = rng.random() < sqrt_c
            continue_b = rng.random() < sqrt_c
            if not (continue_a and continue_b):
                # Once either walk has stopped the two can no longer share a
                # step index, so they can never meet.
                return False
            in_a = graph.in_neighbors(node_a)
            in_b = graph.in_neighbors(node_b)
            if in_a.shape[0] == 0 or in_b.shape[0] == 0:
                return False
            node_a = int(in_a[int(rng.integers(0, in_a.shape[0]))])
            node_b = int(in_b[int(rng.integers(0, in_b.shape[0]))])
        return False

    def count_meeting_pairs(
        self, starts_a: np.ndarray, starts_b: np.ndarray
    ) -> int:
        """Sample one √c-walk pair per ``(starts_a[i], starts_b[i])`` and count meets.

        Vectorised equivalent of calling :meth:`walk_pair_meets` once per pair;
        all pairs advance in lock-step, with numpy handling the per-step
        continuation coin flips and in-neighbour sampling.  Used by the
        correction-factor estimators, whose sample budgets run into the
        thousands per node.
        """
        positions_a = np.asarray(starts_a, dtype=np.int64).copy()
        positions_b = np.asarray(starts_b, dtype=np.int64).copy()
        if positions_a.shape != positions_b.shape:
            raise ParameterError(
                "starts_a and starts_b must have the same shape, got "
                f"{positions_a.shape} and {positions_b.shape}"
            )
        graph = self._graph
        rng = self._rng
        sqrt_c = self._sqrt_c
        met = positions_a == positions_b
        active = np.flatnonzero(~met)
        for _ in range(self._max_length):
            if active.size == 0:
                break
            # Both walks of a pair must survive the continuation coin flips.
            survive = (rng.random(active.size) < sqrt_c) & (
                rng.random(active.size) < sqrt_c
            )
            active = active[survive]
            if active.size == 0:
                break
            next_a = graph.sample_in_neighbors(positions_a[active], rng)
            next_b = graph.sample_in_neighbors(positions_b[active], rng)
            # A walk that reached a node without in-neighbours terminates.
            alive = (next_a >= 0) & (next_b >= 0)
            active = active[alive]
            if active.size == 0:
                break
            next_a = next_a[alive]
            next_b = next_b[alive]
            positions_a[active] = next_a
            positions_b[active] = next_b
            now_met = next_a == next_b
            met[active[now_met]] = True
            active = active[~now_met]
        return int(met.sum())

    def meeting_step(self, start_a: int, start_b: int) -> int | None:
        """Like :meth:`walk_pair_meets` but return the meeting step (or None)."""
        walk_a = self.walk(start_a)
        walk_b = self.walk(start_b)
        for step, (node_a, node_b) in enumerate(zip(walk_a, walk_b)):
            if node_a == node_b:
                return step
        return None

    # ------------------------------------------------------------------ #
    def estimate_simrank(
        self, node_a: int, node_b: int, num_samples: int
    ) -> float:
        """Monte-Carlo estimate of ``s(node_a, node_b)`` via Lemma 3.

        This is the "Monte Carlo with √c-walks" estimator sketched at the end
        of Section 4.1.  It is not part of the SLING index itself but serves
        as an unbiased reference in tests and examples.
        """
        if num_samples <= 0:
            raise ParameterError(f"num_samples must be positive, got {num_samples}")
        if int(node_a) == int(node_b):
            return 1.0
        meets = sum(
            1 for _ in range(num_samples) if self.walk_pair_meets(node_a, node_b)
        )
        return meets / num_samples

    def hitting_probabilities(
        self, start: int, num_samples: int
    ) -> dict[tuple[int, int], float]:
        """Empirical hitting probabilities ``h^(ℓ)(start, ·)`` from samples.

        Returns a mapping ``(ℓ, node) -> frequency``.  Used by tests to
        validate the deterministic local-push construction of Algorithm 2.
        """
        if num_samples <= 0:
            raise ParameterError(f"num_samples must be positive, got {num_samples}")
        counts: dict[tuple[int, int], int] = {}
        for _ in range(num_samples):
            for step, node in enumerate(self.walk(start)):
                key = (step, node)
                counts[key] = counts.get(key, 0) + 1
        return {key: count / num_samples for key, count in counts.items()}
