"""The SLING index (Sections 4-6 of the paper).

:class:`SlingIndex` ties together the building blocks of the other modules:

* correction factors ``d̃_k`` estimated by √c-walk sampling
  (:mod:`repro.sling.correction`, Algorithms 1 / 4),
* per-node hitting-probability sets ``H(v)`` built by reverse local push
  (:mod:`repro.sling.hitting`, Algorithm 2),
* the optional space-reduction and accuracy-enhancement optimizations
  (:mod:`repro.sling.optimizations`, Sections 5.2 / 5.3),

and exposes the two query primitives of the paper:

* :meth:`SlingIndex.single_pair` — Algorithm 3, ``O(1/ε)`` time,
* :meth:`SlingIndex.single_source` — Algorithm 6 (local push) or the naive
  n-fold application of Algorithm 3.

Every returned score carries the Theorem-1 guarantee: additive error at most
``ε`` with probability at least ``1 - δ`` over the randomness of the build.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import IndexNotBuiltError, ParameterError
from ..graphs import DiGraph
from ..ranking import rank_top_k
from .correction import estimate_all_correction_factors
from .hitting import HittingProbabilitySet, build_hitting_sets, exact_near_hops
from .optimizations import AccuracyEnhancer, SpaceReduction
from .packed import (
    PackedHittingStore,
    QueryView,
    intersect_views,
    view_from_hitting_set,
)
from .parameters import SlingParameters
from .single_source import (
    BoundedTopK,
    bounded_top_k,
    single_source_cascade,
    single_source_local_push,
)
from .walks import SqrtCWalker

__all__ = ["SlingIndex", "BuildStatistics"]


@dataclass
class BuildStatistics:
    """Timings and size accounting collected while building the index."""

    correction_seconds: float = 0.0
    hitting_seconds: float = 0.0
    optimization_seconds: float = 0.0
    total_seconds: float = 0.0
    num_hitting_entries: int = 0
    num_reduced_nodes: int = 0
    workers: int = 1
    extra: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"build took {self.total_seconds:.3f}s "
            f"(corrections {self.correction_seconds:.3f}s, "
            f"hitting sets {self.hitting_seconds:.3f}s, "
            f"optimizations {self.optimization_seconds:.3f}s); "
            f"{self.num_hitting_entries} stored hitting probabilities, "
            f"{self.num_reduced_nodes} space-reduced nodes, "
            f"{self.workers} worker(s)"
        )


class SlingIndex:
    """SimRank index with near-optimal query time and provable accuracy.

    Parameters
    ----------
    graph:
        The directed input graph.
    c:
        SimRank decay factor (paper default ``0.6``).
    epsilon:
        Worst-case additive error of every returned SimRank score
        (paper default ``0.025``).
    delta:
        Failure probability of preprocessing; defaults to ``1/n`` as in the
        paper's experiments.
    seed:
        Seed for the √c-walk sampling used by the correction-factor
        estimators.
    adaptive_correction:
        Use Algorithm 4 (adaptive sampling, default) instead of Algorithm 1.
    reduce_space:
        Enable the Section-5.2 space reduction.
    enhance_accuracy:
        Enable the Section-5.3 accuracy enhancement.
    error_split:
        Fraction of the error budget assigned to correction factors (the rest
        goes to the hitting probabilities); see :class:`SlingParameters`.
    parameters:
        A fully resolved :class:`SlingParameters` instance; overrides
        ``c`` / ``epsilon`` / ``delta`` / ``error_split`` when given.

    Examples
    --------
    >>> from repro.graphs import generators
    >>> from repro.sling import SlingIndex
    >>> graph = generators.cycle(8)
    >>> index = SlingIndex(graph, epsilon=0.05, seed=7).build()
    >>> round(index.single_pair(0, 0), 3)
    1.0
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        delta: float | None = None,
        seed: int | None = None,
        adaptive_correction: bool = True,
        reduce_space: bool = False,
        enhance_accuracy: bool = False,
        error_split: float = 0.5,
        parameters: SlingParameters | None = None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ParameterError("cannot index an empty graph")
        self._graph = graph
        if parameters is None:
            parameters = SlingParameters.from_accuracy_target(
                num_nodes=graph.num_nodes,
                c=c,
                epsilon=epsilon,
                delta=delta,
                error_split=error_split,
            )
        self._params = parameters
        self._seed = seed
        self._adaptive_correction = adaptive_correction
        self._reduce_space = reduce_space
        self._enhance_accuracy = enhance_accuracy

        self._corrections: np.ndarray | None = None
        self._correction_max: float | None = None
        self._store: PackedHittingStore | None = None
        #: Lazy dict-based compatibility view of the packed store.
        self._hitting_sets: list[HittingProbabilitySet] | None = None
        self._reduced: np.ndarray | None = None
        self._space_reduction: SpaceReduction | None = None
        self._enhancer: AccuracyEnhancer | None = None
        self._build_stats: BuildStatistics | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DiGraph:
        """The indexed graph."""
        return self._graph

    @property
    def parameters(self) -> SlingParameters:
        """The resolved parameter set (ε, θ, ε_d, ...)."""
        return self._params

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._corrections is not None and (
            self._store is not None or self._hitting_sets is not None
        )

    @property
    def build_statistics(self) -> BuildStatistics:
        """Timings and sizes from the last :meth:`build` call."""
        if self._build_stats is None:
            raise IndexNotBuiltError("SLING index")
        return self._build_stats

    @property
    def correction_factors(self) -> np.ndarray:
        """The estimated correction factors ``d̃_k`` as an ``(n,)`` array."""
        self._require_built()
        assert self._corrections is not None
        return self._corrections

    @property
    def packed_store(self) -> PackedHittingStore:
        """The frozen columnar store all queries read (the real index)."""
        self._require_built()
        if self._store is None:
            # Legacy path: hitting sets were attached directly; freeze them.
            assert self._hitting_sets is not None
            self._store = PackedHittingStore.from_hitting_sets(self._hitting_sets)
        return self._store

    @property
    def hitting_sets(self) -> list[HittingProbabilitySet]:
        """Dict-based compatibility view of the stored sets ``H(v)``.

        Materialised lazily from :attr:`packed_store` on first access; it is
        a read-only snapshot — mutating the returned sets does not affect
        queries, which run on the packed columns.
        """
        self._require_built()
        if self._hitting_sets is None:
            self._hitting_sets = self.packed_store.to_hitting_sets()
        return self._hitting_sets

    def _require_built(self) -> None:
        if not self.is_built:
            raise IndexNotBuiltError("SLING index")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "built" if self.is_built else "not built"
        return (
            f"SlingIndex(n={self._graph.num_nodes}, m={self._graph.num_edges}, "
            f"epsilon={self._params.epsilon}, {status})"
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(self, *, workers: int = 1) -> "SlingIndex":
        """Build the index: correction factors, hitting sets, optimizations.

        ``workers > 1`` parallelises both preprocessing phases over node
        ranges with a process pool (Section 5.4); results are identical to a
        sequential build up to the per-node sampling randomness.
        Returns ``self`` so construction can be chained.
        """
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        start_total = time.perf_counter()
        params = self._params

        if workers == 1:
            start = time.perf_counter()
            walker = SqrtCWalker(self._graph, params.c, seed=self._seed)
            corrections = estimate_all_correction_factors(
                walker,
                params.epsilon_d,
                params.delta_d,
                adaptive=self._adaptive_correction,
            )
            correction_seconds = time.perf_counter() - start

            start = time.perf_counter()
            hitting_sets = build_hitting_sets(
                self._graph, params.sqrt_c, params.theta
            )
            hitting_seconds = time.perf_counter() - start
        else:
            from .parallel import parallel_build

            corrections, hitting_sets, correction_seconds, hitting_seconds = (
                parallel_build(
                    self._graph,
                    params,
                    workers=workers,
                    seed=self._seed,
                    adaptive_correction=self._adaptive_correction,
                )
            )

        start = time.perf_counter()
        reduced = None
        num_reduced = 0
        if self._reduce_space:
            self._space_reduction = SpaceReduction(theta=params.theta)
            reduced = self._space_reduction.apply(self._graph, hitting_sets)
            num_reduced = int(reduced.sum())

        # Freeze the mutable build-time dicts into the packed columnar store;
        # everything downstream (queries, persistence, size accounting) reads
        # the flat arrays.
        start_pack = time.perf_counter()
        store = PackedHittingStore.from_hitting_sets(hitting_sets)
        pack_seconds = time.perf_counter() - start_pack

        enhancer = None
        if self._enhance_accuracy:
            enhancer = AccuracyEnhancer(self._graph, params.epsilon, params.sqrt_c)
            enhancer.mark_all_packed(store)
        optimization_seconds = time.perf_counter() - start

        self._corrections = corrections
        self._store = store
        self._hitting_sets = None  # compatibility view rematerialises lazily
        self._reduced = reduced
        self._enhancer = enhancer
        self._build_stats = BuildStatistics(
            correction_seconds=correction_seconds,
            hitting_seconds=hitting_seconds,
            optimization_seconds=optimization_seconds,
            total_seconds=time.perf_counter() - start_total,
            num_hitting_entries=store.num_entries,
            num_reduced_nodes=num_reduced,
            workers=workers,
            extra={"pack_seconds": pack_seconds},
        )
        return self

    # ------------------------------------------------------------------ #
    # Query-time hitting sets (with optimizations applied)
    # ------------------------------------------------------------------ #
    def _query_view(self, node: int) -> QueryView:
        """The packed view actually used to answer a query from ``node``.

        Starts from a zero-copy slice of the store and composes, in order,
        the space-reduction reconstruction (exact step-0/1/2 values via
        Algorithm 5) and the accuracy enhancement ``H*(v)`` as small
        copy-on-write overlays — no dicts are rebuilt on the hot path.
        """
        self._require_built()
        node = int(node)
        self._graph.in_degree(node)  # validates the node id
        view = self.packed_store.node_view(node)
        if (
            self._reduced is not None
            and self._space_reduction is not None
            and self._reduced[node]
        ):
            exact = exact_near_hops(self._graph, node, self._params.sqrt_c)
            view = view.override(
                (level, target, value)
                for level, entries in exact.items()
                for target, value in entries.items()
            )
        if self._enhancer is not None:
            generated = self._enhancer.generated_entries(node, view.contains)
            if generated:
                view = view.override(
                    (level, target, value)
                    for (level, target), value in generated.items()
                )
        return view

    def query_hitting_set(self, node: int) -> HittingProbabilitySet:
        """The hitting set actually used to answer a query from ``node``.

        Applies, in order, the space-reduction reconstruction (exact step-1/2
        values via Algorithm 5) and the accuracy enhancement ``H*(v)``.  This
        is the dict-based compatibility twin of :meth:`_query_view`; the two
        compose identical entries (the parity suite asserts it).
        """
        self._require_built()
        node = int(node)
        self._graph.in_degree(node)  # validates the node id
        # Materialise only the requested node's set; the full hitting_sets
        # list is built lazily elsewhere and reused here once it exists.
        if self._hitting_sets is not None:
            effective = self._hitting_sets[node]
        else:
            effective = self.packed_store.hitting_set(node)
        if (
            self._reduced is not None
            and self._space_reduction is not None
            and self._reduced[node]
        ):
            effective = self._space_reduction.reconstruct(
                self._graph, node, effective, self._params.sqrt_c
            )
        if self._enhancer is not None:
            effective = self._enhancer.enhance(node, effective)
        return effective

    # ------------------------------------------------------------------ #
    # Single-pair queries (Algorithm 3)
    # ------------------------------------------------------------------ #
    def single_pair(self, node_u: int, node_v: int) -> float:
        """Approximate SimRank ``s̃(u, v)`` with at most ``ε`` additive error.

        Implements Algorithm 3 on the packed store: one sorted-key
        intersection of the two views' combined-key columns, then a single
        dot product with ``corrections[targets]``.
        """
        self._require_built()
        assert self._corrections is not None
        return intersect_views(
            self._query_view(node_u), self._query_view(node_v), self._corrections
        )

    def _intersect_score(
        self, set_u: HittingProbabilitySet, set_v: HittingProbabilitySet
    ) -> float:
        """Algorithm 3 over dict-based sets (compatibility/reference path)."""
        assert self._corrections is not None
        return intersect_views(
            view_from_hitting_set(set_u),
            view_from_hitting_set(set_v),
            self._corrections,
        )

    # ------------------------------------------------------------------ #
    # Single-source queries (Section 6)
    # ------------------------------------------------------------------ #
    def single_source(self, node: int, *, method: str = "local_push") -> np.ndarray:
        """Approximate SimRank from ``node`` to every node, as an ``(n,)`` array.

        Parameters
        ----------
        node:
            The query (source) node.
        method:
            ``"local_push"`` runs Algorithm 6 (the default; bitwise-stable
            reference kernel); ``"cascade"`` runs the level-cascade kernel —
            ``max ℓ`` push steps instead of ``Σℓ``, several times faster and
            within the same ``ε`` guarantee of the reference (but not bitwise
            identical to it); ``"pairwise"`` applies Algorithm 3 once per
            node — asymptotically ``O(n/ε)`` but slower in practice, exactly
            as Figure 2 shows.
        """
        if method == "local_push":
            return self._single_source_local_push(node)
        if method == "cascade":
            return self._single_source_cascade(node)
        if method == "pairwise":
            return self._single_source_pairwise(node)
        raise ParameterError(
            f"unknown single-source method {method!r}; "
            "expected 'local_push', 'cascade' or 'pairwise'"
        )

    def _single_source_pairwise(self, node: int) -> np.ndarray:
        self._require_built()
        assert self._corrections is not None
        scores = np.zeros(self._graph.num_nodes, dtype=np.float64)
        view_u = self._query_view(node)
        for other in self._graph.nodes():
            scores[other] = intersect_views(
                view_u, self._query_view(other), self._corrections
            )
        return scores

    def _single_source_local_push(self, node: int) -> np.ndarray:
        """Algorithm 6: rebuild the relevant inverted lists on the fly."""
        self._require_built()
        assert self._corrections is not None
        return single_source_local_push(
            self._graph,
            self._query_view(node),
            self._corrections,
            self._params.sqrt_c,
            self._params.theta,
        )

    def _single_source_cascade(self, node: int) -> np.ndarray:
        """The level-cascade kernel over the same per-query view."""
        self._require_built()
        assert self._corrections is not None
        return single_source_cascade(
            self._graph,
            self._query_view(node),
            self._corrections,
            self._params.sqrt_c,
            self._params.theta,
        )

    def _correction_upper_bound(self) -> float:
        """Cached ``max_j d̃_j``, used to scale store-side pruning bounds."""
        assert self._corrections is not None
        if self._correction_max is None:
            self._correction_max = float(
                np.asarray(self._corrections).max(initial=0.0)
            )
        return self._correction_max

    def _store_level_bounds(self, node: int) -> dict[int, float]:
        """Per-level residual-mass bounds from the packed store's metadata.

        ``B_ℓ = (√c)^ℓ · max_k h̃^(ℓ)(node, k) · max_j d̃_j`` — an upper bound
        on the per-query corrected frontier maximum that needs no column
        reads at query time (the store stats are computed once and cached).
        Only consulted for levels above the overlay floor, where the raw
        store values are authoritative for every flag combination.
        """
        sqrt_c = self._params.sqrt_c
        correction_max = self._correction_upper_bound()
        stat_levels, _totals, stat_maxima = self.packed_store.node_level_stats(
            int(node)
        )
        return {
            int(level): (sqrt_c ** int(level)) * float(maximum) * correction_max
            for level, maximum in zip(stat_levels, stat_maxima)
        }

    # ------------------------------------------------------------------ #
    # Derived queries
    # ------------------------------------------------------------------ #
    def top_k(
        self, node: int, k: int, *, method: str = "local_push",
        budget: float | None = None,
    ) -> list[tuple[int, float]]:
        """The ``k`` nodes most similar to ``node`` (excluding ``node`` itself).

        ``method`` accepts every :meth:`single_source` method plus
        ``"bounded"``, the pruned top-k path of :meth:`top_k_bounded`
        (``budget`` is only meaningful there).  Every ``single_source``
        variant returns a fresh array, so the ranking consumes it directly —
        no defensive copy.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if method == "bounded":
            return self.top_k_bounded(node, k, budget=budget).ranked
        return rank_top_k(self.single_source(node, method=method), int(node), k)

    def top_k_bounded(
        self, node: int, k: int, *, budget: float | None = None
    ) -> BoundedTopK:
        """Top-k via the truncated cascade with residual-mass pruning bounds.

        The cascade stops at the shallowest stored level whose undelivered
        tail (bounded per level by the packed store's precomputed
        residual-mass metadata) fits ``budget``, and the truncated ranking
        is kept only when the k-th candidate's lower bound dominates that
        tail; otherwise the full cascade runs.  Returned scores are within
        ``tail_bound ≤ budget ≤ ε`` of the full cascade's values, so the
        Theorem-1 additive guarantee degrades by at most the budget.

        ``budget`` defaults to ``ε/4``, which on the benchmark workload
        keeps exact top-k set agreement while stopping 2-3x shallower than
        the full depth.
        """
        self._require_built()
        assert self._corrections is not None
        if budget is None:
            budget = self._params.epsilon / 4.0
        return bounded_top_k(
            self._graph,
            self._query_view(node),
            self._corrections,
            self._params.sqrt_c,
            self._params.theta,
            int(node),
            k,
            budget=budget,
            level_bounds=self._store_level_bounds(node),
        )

    def all_pairs(self, *, method: str = "local_push") -> np.ndarray:
        """All-pairs SimRank matrix computed one single-source query per node.

        Intended for the accuracy experiments on small graphs (Figures 5-7);
        memory is Θ(n²).
        """
        self._require_built()
        n = self._graph.num_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for node in self._graph.nodes():
            matrix[node] = self.single_source(node, method=method)
        return matrix

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    def index_size_bytes(self) -> int:
        """Serialized index size: correction factors plus all stored HP entries.

        Matches the packed on-disk layout of :mod:`repro.sling.storage`
        (8 bytes per correction factor, 12 bytes per hitting-probability
        entry), which is the quantity Figure 4 of the paper reports.  O(1):
        read straight off the packed store's array lengths.
        """
        self._require_built()
        correction_bytes = 8 * self._graph.num_nodes
        return correction_bytes + self.packed_store.size_bytes()

    def resident_bytes(self) -> int:
        """Actual in-memory footprint of the built index's arrays.

        Correction factors plus every packed column (including the combined
        keys column).  For an index loaded with ``mmap_mode`` this counts the
        mapped extent, not resident pages.
        """
        self._require_built()
        assert self._corrections is not None
        return int(self._corrections.nbytes) + self.packed_store.nbytes

    def average_set_size(self) -> float:
        """Average number of stored hitting probabilities per node (O(1))."""
        self._require_built()
        store = self.packed_store
        if store.num_nodes == 0:
            return 0.0
        return store.num_entries / store.num_nodes
