"""The mutation control-plane: applying edge deltas to live sessions.

This module is the service-side half of the dynamic-graph subsystem
(:mod:`repro.sling.dynamic` is the index-side half).  A
:class:`~repro.service.control.MutateRequest` arrives like any other
control request; :func:`apply_mutation` turns it into an in-place update of
the named session:

1. the session's mutation-capable engine is found (or built — the in-memory
   ``sling`` backend is the one mutable backend today, and it is promoted
   to a :class:`~repro.sling.dynamic.DynamicSlingIndex` on first mutation
   without rebuilding);
2. the edge delta is applied incrementally, yielding a
   :class:`~repro.sling.dynamic.MutationReport` with the exact set of
   source nodes whose answers may have changed;
3. the *same* :class:`~repro.engine.QueryEngine` object keeps serving — its
   single-source LRU is scoped to the new ``index_version`` via
   :meth:`~repro.engine.QueryEngine.invalidate_cache`, dropping only the
   affected sources' vectors (unaffected entries survive and keep hitting);
4. the session's graph handle is swapped to the mutated graph and every
   *other* engine (built against the pre-mutation graph) is dropped, to be
   rebuilt lazily on next use;
5. the ack reports the new monotonic ``index_version`` and the certified
   staleness bound ``ε_stale`` so clients can reason about what they read.

``refreeze=True`` additionally compacts all outstanding deltas into a fresh
frozen store (restoring bitwise rebuild-parity answers) before
acknowledging; because a re-freeze resamples every correction factor, it
clears the whole cache rather than an affected subset.

Everything here is duck-typed against :class:`SimRankService` /
:class:`DatasetSession` rather than importing them, so the service module
can import this one without a cycle.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from ..exceptions import ParameterError, ReproError
from ..graphs import datasets
from .results import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_UNAVAILABLE,
    ERROR_UNKNOWN_DATASET,
    QueryResult,
)

__all__ = ["apply_mutation", "mutate_session", "recover_session"]

#: Engine keys probed first when looking for a mutation-capable engine —
#: the planner's pick and the explicit SLING pin are where one lives.
_PREFERRED_KEYS = ("sling", "auto")


def _mutable_engine(session):
    """An already-built engine of ``session`` whose backend can mutate, or
    ``None``.  Preferring an existing engine over building a new one is the
    point of the exercise: it is the engine whose cache and statistics the
    session's traffic is hitting."""
    with session._lock:
        engines = dict(session._engines)
    for key in _PREFERRED_KEYS:
        engine = engines.get(key)
        if engine is not None and engine.backend.supports_mutation:
            return engine
    for engine in engines.values():
        if engine.backend.supports_mutation:
            return engine
    return None


def mutate_session(session, added=(), removed=(), *, refreeze=False) -> dict:
    """Apply an edge delta to one open session, in place; returns the ack.

    Raises :class:`~repro.exceptions.ParameterError` when no
    mutation-capable backend is available for the session (e.g. it serves a
    shared read-only ``sling-disk`` index) and
    :class:`~repro.exceptions.GraphFormatError` for malformed deltas.
    """
    engine = _mutable_engine(session)
    if engine is None:
        engine = session.engine("sling")
        if not engine.backend.supports_mutation:
            raise ParameterError(
                f"dataset {session.name!r} is served by backend "
                f"{engine.backend.info.name!r}, which does not support "
                "graph mutation (shared on-disk indexes are read-only)"
            )
    backend = engine.backend
    report = backend.apply_mutation(added, removed)
    refrozen = False
    if refreeze:
        refrozen = backend.refreeze()
    version = backend.index_version

    # Invalidate (bumping the engine's version) *before* publishing the
    # session version: the engine's version must never trail the session's,
    # or a query could serve a pre-mutation cached vector stamped with the
    # new version.  The benign direction — a fresher answer under the old
    # stamp — is the one mid-mutation races are allowed to produce.
    if refrozen and refreeze:
        # The re-freeze resampled every correction factor: all vectors are
        # stale, not just the mutation's affected set.
        invalidated = engine.invalidate_cache(None, index_version=version)
    else:
        invalidated = engine.invalidate_cache(
            report.affected_sources, index_version=version
        )

    with session._lock:
        session._graph = backend.graph
        session._index_version = version
        # The mutated engine keeps every key it already answers for and
        # additionally becomes the session's "sling" engine; engines built
        # against the pre-mutation graph are dropped and rebuild lazily.
        keep: OrderedDict = OrderedDict(
            (key, eng)
            for key, eng in session._engines.items()
            if eng is engine
        )
        keep.setdefault("sling", engine)
        session._engines = keep
        plan = engine.plan.as_dict() if engine.plan else None
        session._by_label = {
            label: (engine, plan) for label in (None, "auto", "sling")
        }
    return {
        "dataset": session.name,
        "index_version": version,
        "epsilon_stale": backend.staleness_bound(),
        "edges_added": report.edges_added,
        "edges_removed": report.edges_removed,
        "affected_targets": report.affected_targets,
        "affected_sources": len(report.affected_sources),
        "invalidated_vectors": invalidated,
        "refrozen": refrozen,
        "backend": backend.info.name,
        "repair_seconds": report.seconds,
    }


def recover_session(session, wal) -> dict:
    """Replay a WAL (checkpoint + tail) into a freshly opened session.

    The checkpoint is applied as one ``refreeze=True`` mutation — its net
    delta fully describes the compacted generation, and the re-freeze's
    bitwise rebuild parity makes the result reproduce the frozen store the
    crashed worker was serving.  The tail records then replay in append
    order, restoring the overlay.  Post-recovery answers therefore match
    the pre-crash dynamic index within the certified ``eps_stale`` bound.
    """
    replayed = 0
    checkpoint = wal.checkpoint_payload
    if checkpoint is not None:
        added = [tuple(edge) for edge in checkpoint.get("added", ())]
        removed = [tuple(edge) for edge in checkpoint.get("removed", ())]
        if added or removed:
            mutate_session(session, added, removed, refreeze=True)
            replayed += 1
    for record in wal.records:
        mutate_session(
            session,
            [tuple(edge) for edge in record.get("add", ())],
            [tuple(edge) for edge in record.get("remove", ())],
            refreeze=bool(record.get("refreeze")),
        )
        replayed += 1
    return {"replayed": replayed, "truncated_bytes": wal.truncated_bytes}


def apply_mutation(service, request, start: float | None = None) -> QueryResult:
    """Execute one ``mutate`` control request against ``service``.

    Owns its whole error mapping (unknown dataset / out-of-range endpoints /
    unsupported backend) so :meth:`SimRankService.execute_control` can
    delegate without growing mutation-specific branches.
    """
    if start is None:
        start = time.perf_counter()
    kind, dataset = request.kind, request.dataset

    def fail(code: str, message: str) -> QueryResult:
        return QueryResult.failure(
            code, message, kind=kind, dataset=dataset,
            seconds=time.perf_counter() - start,
        )

    try:
        session = service.open_dataset(dataset)
    except ParameterError as exc:
        known = any(
            key.lower() == dataset.lower() for key in datasets.dataset_names()
        )
        return fail(ERROR_INTERNAL if known else ERROR_UNKNOWN_DATASET, str(exc))
    except Exception as exc:  # noqa: BLE001 - the boundary must not leak
        return fail(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")

    n = session.num_nodes
    bad = [
        (u, v)
        for u, v in (*request.add, *request.remove)
        if u >= n or v >= n
    ]
    if bad:
        described = ", ".join(f"({u}, {v})" for u, v in bad[:5])
        return fail(
            ERROR_NODE_OUT_OF_RANGE,
            f"edge endpoint(s) out of range for dataset {session.name!r} "
            f"with {n} nodes: {described}",
        )

    wal = service.wal_for(session.name) if hasattr(service, "wal_for") else None
    mutation_id = getattr(request, "mutation_id", None)
    if wal is not None and mutation_id is not None and wal.known(mutation_id):
        # A retried mutate that was already acknowledged: answer with the
        # originally recorded ack (or a minimal synthesised one when the
        # record was folded into a checkpoint) without applying twice.
        ack = wal.recorded_ack(mutation_id)
        if ack is None:
            ack = {
                "dataset": session.name,
                "index_version": session.index_version,
                "backend": "sling",
            }
        ack = {**ack, "deduplicated": True}
        return QueryResult.success(
            kind=kind,
            dataset=session.name,
            value=ack,
            backend=ack.get("backend", "sling"),
            plan=None,
            seconds=time.perf_counter() - start,
            cache_hit=None,
            index_version=ack.get("index_version"),
        )

    # Snapshot the *effective* delta before applying: adding a present edge
    # or removing an absent one is a no-op, so the requested delta is
    # neither the inverse (for rolling back a failed WAL append) nor safe
    # to log — the checkpoint's net-delta cancellation is only exact when
    # every logged add/remove really changed the graph.
    applied_add: list | None = None
    applied_remove: list | None = None
    if wal is not None:
        with session._lock:
            graph = session._graph
        state: dict = {}

        def present(edge) -> bool:
            if edge not in state:
                state[edge] = graph.has_edge(*edge)
            return state[edge]

        applied_add = []
        for edge in request.add:
            if not present(edge):
                applied_add.append(edge)
                state[edge] = True
        applied_remove = []
        for edge in request.remove:
            if present(edge):
                applied_remove.append(edge)
                state[edge] = False

    try:
        ack = mutate_session(
            session, request.add, request.remove, refreeze=request.refreeze
        )
    except ReproError as exc:
        return fail(ERROR_BAD_REQUEST, str(exc))
    except Exception as exc:  # noqa: BLE001 - the boundary must not leak
        return fail(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")

    if wal is not None:
        try:
            wal.append(
                add=applied_add,
                remove=applied_remove,
                refreeze=request.refreeze,
                mutation_id=mutation_id,
                ack=ack,
            )
        except OSError as exc:
            # The ack must never outrun the log: undo the in-memory apply
            # and answer a retryable error.  The client's view stays
            # consistent — the mutation neither happened nor was recorded.
            try:
                mutate_session(session, applied_remove, applied_add)
            except Exception:  # noqa: BLE001 - rollback is best-effort
                pass
            return fail(
                ERROR_UNAVAILABLE,
                f"mutation could not be made durable: {exc}",
            )
        if ack.get("refrozen"):
            # The record is already durable; folding the log into a
            # checkpoint is an optimisation, so its failure must not turn
            # a successfully applied-and-logged mutation into an error.
            try:
                wal.checkpoint(version=ack["index_version"])
            except OSError:
                pass

    return QueryResult.success(
        kind=kind,
        dataset=session.name,
        value=ack,
        backend=ack["backend"],
        plan=None,
        seconds=time.perf_counter() - start,
        cache_hit=None,
        index_version=ack["index_version"],
    )
