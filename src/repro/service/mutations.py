"""The mutation control-plane: applying edge deltas to live sessions.

This module is the service-side half of the dynamic-graph subsystem
(:mod:`repro.sling.dynamic` is the index-side half).  A
:class:`~repro.service.control.MutateRequest` arrives like any other
control request; :func:`apply_mutation` turns it into an in-place update of
the named session:

1. the session's mutation-capable engine is found (or built — the in-memory
   ``sling`` backend is the one mutable backend today, and it is promoted
   to a :class:`~repro.sling.dynamic.DynamicSlingIndex` on first mutation
   without rebuilding);
2. the edge delta is applied incrementally, yielding a
   :class:`~repro.sling.dynamic.MutationReport` with the exact set of
   source nodes whose answers may have changed;
3. the *same* :class:`~repro.engine.QueryEngine` object keeps serving — its
   single-source LRU is scoped to the new ``index_version`` via
   :meth:`~repro.engine.QueryEngine.invalidate_cache`, dropping only the
   affected sources' vectors (unaffected entries survive and keep hitting);
4. the session's graph handle is swapped to the mutated graph and every
   *other* engine (built against the pre-mutation graph) is dropped, to be
   rebuilt lazily on next use;
5. the ack reports the new monotonic ``index_version`` and the certified
   staleness bound ``ε_stale`` so clients can reason about what they read.

``refreeze=True`` additionally compacts all outstanding deltas into a fresh
frozen store (restoring bitwise rebuild-parity answers) before
acknowledging; because a re-freeze resamples every correction factor, it
clears the whole cache rather than an affected subset.

Everything here is duck-typed against :class:`SimRankService` /
:class:`DatasetSession` rather than importing them, so the service module
can import this one without a cycle.
"""

from __future__ import annotations

import time
from collections import OrderedDict

from ..exceptions import ParameterError, ReproError
from ..graphs import datasets
from .results import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_UNKNOWN_DATASET,
    QueryResult,
)

__all__ = ["apply_mutation", "mutate_session"]

#: Engine keys probed first when looking for a mutation-capable engine —
#: the planner's pick and the explicit SLING pin are where one lives.
_PREFERRED_KEYS = ("sling", "auto")


def _mutable_engine(session):
    """An already-built engine of ``session`` whose backend can mutate, or
    ``None``.  Preferring an existing engine over building a new one is the
    point of the exercise: it is the engine whose cache and statistics the
    session's traffic is hitting."""
    with session._lock:
        engines = dict(session._engines)
    for key in _PREFERRED_KEYS:
        engine = engines.get(key)
        if engine is not None and engine.backend.supports_mutation:
            return engine
    for engine in engines.values():
        if engine.backend.supports_mutation:
            return engine
    return None


def mutate_session(session, added=(), removed=(), *, refreeze=False) -> dict:
    """Apply an edge delta to one open session, in place; returns the ack.

    Raises :class:`~repro.exceptions.ParameterError` when no
    mutation-capable backend is available for the session (e.g. it serves a
    shared read-only ``sling-disk`` index) and
    :class:`~repro.exceptions.GraphFormatError` for malformed deltas.
    """
    engine = _mutable_engine(session)
    if engine is None:
        engine = session.engine("sling")
        if not engine.backend.supports_mutation:
            raise ParameterError(
                f"dataset {session.name!r} is served by backend "
                f"{engine.backend.info.name!r}, which does not support "
                "graph mutation (shared on-disk indexes are read-only)"
            )
    backend = engine.backend
    report = backend.apply_mutation(added, removed)
    refrozen = False
    if refreeze:
        refrozen = backend.refreeze()
    version = backend.index_version

    # Invalidate (bumping the engine's version) *before* publishing the
    # session version: the engine's version must never trail the session's,
    # or a query could serve a pre-mutation cached vector stamped with the
    # new version.  The benign direction — a fresher answer under the old
    # stamp — is the one mid-mutation races are allowed to produce.
    if refrozen and refreeze:
        # The re-freeze resampled every correction factor: all vectors are
        # stale, not just the mutation's affected set.
        invalidated = engine.invalidate_cache(None, index_version=version)
    else:
        invalidated = engine.invalidate_cache(
            report.affected_sources, index_version=version
        )

    with session._lock:
        session._graph = backend.graph
        session._index_version = version
        # The mutated engine keeps every key it already answers for and
        # additionally becomes the session's "sling" engine; engines built
        # against the pre-mutation graph are dropped and rebuild lazily.
        keep: OrderedDict = OrderedDict(
            (key, eng)
            for key, eng in session._engines.items()
            if eng is engine
        )
        keep.setdefault("sling", engine)
        session._engines = keep
        plan = engine.plan.as_dict() if engine.plan else None
        session._by_label = {
            label: (engine, plan) for label in (None, "auto", "sling")
        }
    return {
        "dataset": session.name,
        "index_version": version,
        "epsilon_stale": backend.staleness_bound(),
        "edges_added": report.edges_added,
        "edges_removed": report.edges_removed,
        "affected_targets": report.affected_targets,
        "affected_sources": len(report.affected_sources),
        "invalidated_vectors": invalidated,
        "refrozen": refrozen,
        "backend": backend.info.name,
        "repair_seconds": report.seconds,
    }


def apply_mutation(service, request, start: float | None = None) -> QueryResult:
    """Execute one ``mutate`` control request against ``service``.

    Owns its whole error mapping (unknown dataset / out-of-range endpoints /
    unsupported backend) so :meth:`SimRankService.execute_control` can
    delegate without growing mutation-specific branches.
    """
    if start is None:
        start = time.perf_counter()
    kind, dataset = request.kind, request.dataset

    def fail(code: str, message: str) -> QueryResult:
        return QueryResult.failure(
            code, message, kind=kind, dataset=dataset,
            seconds=time.perf_counter() - start,
        )

    try:
        session = service.open_dataset(dataset)
    except ParameterError as exc:
        known = any(
            key.lower() == dataset.lower() for key in datasets.dataset_names()
        )
        return fail(ERROR_INTERNAL if known else ERROR_UNKNOWN_DATASET, str(exc))
    except Exception as exc:  # noqa: BLE001 - the boundary must not leak
        return fail(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")

    n = session.num_nodes
    bad = [
        (u, v)
        for u, v in (*request.add, *request.remove)
        if u >= n or v >= n
    ]
    if bad:
        described = ", ".join(f"({u}, {v})" for u, v in bad[:5])
        return fail(
            ERROR_NODE_OUT_OF_RANGE,
            f"edge endpoint(s) out of range for dataset {session.name!r} "
            f"with {n} nodes: {described}",
        )

    try:
        ack = mutate_session(
            session, request.add, request.remove, refreeze=request.refreeze
        )
    except ReproError as exc:
        return fail(ERROR_BAD_REQUEST, str(exc))
    except Exception as exc:  # noqa: BLE001 - the boundary must not leak
        return fail(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}")

    return QueryResult.success(
        kind=kind,
        dataset=session.name,
        value=ack,
        backend=ack["backend"],
        plan=None,
        seconds=time.perf_counter() - start,
        cache_hit=None,
        index_version=ack["index_version"],
    )
