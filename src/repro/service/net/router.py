"""Multi-process sharded serving: a worker pool and the router in front.

The scale-out model: ``N`` worker processes, each a ``repro serve --unix``
child over its own Unix socket, all configured identically (same scale,
seed, backend knobs — and ideally the same prebuilt ``--index-dir``, so
every worker mmaps one shared packed index read-only).  The
:class:`Router` listens on the public address, speaks the same wire
protocol v2 as any single server, and forwards:

* **data-plane queries** to one worker per dataset — a consistent hash over
  the (lower-cased) dataset name, optionally overridden per dataset with
  explicit pins — so each dataset's engine, index, and single-source cache
  live in exactly one process and stay hot;
* **targeted control** (``open_dataset`` / ``close_dataset`` /
  ``describe(dataset)``) to that same shard;
* **fan-out control** (``list_datasets``, ``stats``) to every worker, with
  the responses merged into one envelope shaped exactly like a single
  server's (statistics totals are summed, latency percentiles recomputed
  from the merged samples);
* ``ping`` round-robin, and ``shutdown`` broadcast — acknowledging the
  client, stopping every worker, then the router itself.

Failure semantics — the reason this layer exists: the :class:`WorkerPool`
health-checks each worker (process liveness plus a ``ping`` with timeout
and retries) and restarts dead ones, **replaying their open-dataset state**
so the replacement is warm before traffic returns.  A client whose request
is in flight when its worker dies receives a structured ``unavailable``
error envelope — never a hang — and the very same connection succeeds again
once the replacement worker is up (worker sockets rebind the same path).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Sequence

from ...engine import merge_statistics_totals
from ...exceptions import ParameterError
from ..results import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    ERROR_UNAVAILABLE,
    QueryResult,
)
from ..wire import decode_envelope_line, encode_frame, response_frames
from .channel import DEFAULT_MAX_LINE_BYTES, Address, LineChannel, OversizedLineError

__all__ = ["HashRing", "WorkerPool", "Router"]

#: How often blocked loops wake up to notice a stop request, in seconds.
_POLL_SECONDS = 0.2

#: Worker response lines opening with this are mid-stream ``partial`` frames
#: (the server's compact encoder emits keys in this exact order), so the
#: router keeps forwarding until a line that is not one — the terminal frame.
_PARTIAL_PREFIX = '{"v":2,"frame":"partial"'


class HashRing:
    """Consistent hashing of dataset names onto worker indexes.

    Virtual nodes are keyed by worker *index*, so the mapping is stable
    across worker restarts (a replacement worker keeps its predecessor's
    shard) and across router restarts with the same worker count.
    """

    def __init__(self, worker_count: int, *, replicas: int = 64) -> None:
        if worker_count < 1:
            raise ParameterError(f"worker_count must be >= 1, got {worker_count}")
        points = []
        for worker in range(worker_count):
            for replica in range(replicas):
                points.append((self._hash(f"worker-{worker}#{replica}"), worker))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]
        self.worker_count = worker_count

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(
            hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
        )

    def lookup(self, key: str) -> int:
        """The worker owning ``key`` (case-insensitive)."""
        position = bisect.bisect_right(self._hashes, self._hash(key.lower()))
        return self._owners[position % len(self._owners)]

    def assignments(self, keys: Sequence[str]) -> dict[str, int]:
        """Owner per key — handy for capacity planning and the benchmarks."""
        return {key: self.lookup(key) for key in keys}


class _Worker:
    """One pool slot: its stable Unix-socket address and current process."""

    def __init__(self, index: int, address: Address) -> None:
        self.index = index
        self.address = address
        self.process: subprocess.Popen | None = None
        self.generation = 0
        self.restarts = 0


class WorkerPool:
    """Spawn, health-check, and restart ``repro serve --unix`` children.

    Each worker binds a stable per-index socket path under ``run_dir``, so
    a restarted worker is reachable at the same address and clients (the
    router's connection links) simply reconnect.  Health checking is
    two-layered: a cheap ``poll()`` catches crashed processes immediately,
    and a ``ping`` round-trip with ``ping_timeout`` / ``ping_retries``
    catches wedged-but-alive ones.  ``on_restart(index)`` fires after a
    replacement is ready — the router uses it to replay open datasets.
    """

    def __init__(
        self,
        count: int,
        *,
        serve_args: Sequence[str] = (),
        run_dir: str | Path | None = None,
        health_interval: float = 2.0,
        ping_timeout: float = 5.0,
        ping_retries: int = 2,
        spawn_timeout: float = 120.0,
    ) -> None:
        if count < 1:
            raise ParameterError(f"worker count must be >= 1, got {count}")
        self._owns_run_dir = run_dir is None
        self._run_dir = Path(
            run_dir if run_dir is not None
            else tempfile.mkdtemp(prefix="repro-router-")
        )
        self._run_dir.mkdir(parents=True, exist_ok=True)
        self._serve_args = list(serve_args)
        self._health_interval = health_interval
        self._ping_timeout = ping_timeout
        self._ping_retries = ping_retries
        self._spawn_timeout = spawn_timeout
        self._workers = [
            _Worker(
                index,
                Address(
                    family="unix",
                    path=str(self._run_dir / f"worker-{index}.sock"),
                ),
            )
            for index in range(count)
        ]
        self._lock = threading.RLock()
        self._stopping = threading.Event()
        self._health_thread: threading.Thread | None = None
        #: Called with the worker index after a successful restart.
        self.on_restart: Callable[[int], None] | None = None

    @property
    def count(self) -> int:
        """Number of worker slots."""
        return len(self._workers)

    def worker_address(self, index: int) -> Address:
        """The stable socket address of worker ``index``."""
        return self._workers[index].address

    def restart_counts(self) -> list[int]:
        """Restarts per worker so far (observability / tests)."""
        return [worker.restarts for worker in self._workers]

    def worker_pid(self, index: int) -> int | None:
        """The OS pid of worker ``index``'s current process (``None`` before
        spawn) — the handle the fault-injection harness kills through."""
        process = self._workers[index].process
        return process.pid if process is not None else None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every worker, wait until all are ready, begin health checks."""
        for worker in self._workers:
            self._spawn(worker)
        for worker in self._workers:
            self._wait_ready(worker)
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-pool-health", daemon=True
        )
        self._health_thread.start()

    def _spawn(self, worker: _Worker) -> None:
        try:
            Path(worker.address.path).unlink()
        except FileNotFoundError:
            pass
        src_dir = str(Path(__file__).resolve().parents[3])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir, env["PYTHONPATH"]] if env.get("PYTHONPATH") else [src_dir]
        )
        worker.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--unix", worker.address.path,
                *self._serve_args,
            ],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        worker.generation += 1

    def _wait_ready(self, worker: _Worker) -> None:
        """Block until the worker accepts a connection and says hello."""
        deadline = time.monotonic() + self._spawn_timeout
        while True:
            process = worker.process
            if process is not None and process.poll() is not None:
                raise RuntimeError(
                    f"worker {worker.index} exited with code "
                    f"{process.returncode} before becoming ready"
                )
            try:
                sock = worker.address.connect(timeout=1.0)
            except OSError:
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"worker {worker.index} did not become ready within "
                        f"{self._spawn_timeout:.0f}s"
                    ) from None
                time.sleep(0.05)
                continue
            channel = LineChannel(sock)
            try:
                channel.settimeout(self._spawn_timeout)
                hello = channel.read_line()
            except OSError:
                hello = None
            finally:
                channel.close()
            if hello and '"frame":"hello"' in hello:
                return
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"worker {worker.index} connected but never said hello"
                )
            time.sleep(0.05)

    # ------------------------------------------------------------------ #
    def _ping(self, worker: _Worker) -> bool:
        """One ping round-trip over a fresh connection; ``True`` if healthy."""
        try:
            sock = worker.address.connect(timeout=self._ping_timeout)
        except OSError:
            return False
        channel = LineChannel(sock)
        try:
            channel.settimeout(self._ping_timeout)
            if channel.read_line() is None:  # hello
                return False
            channel.send_line('{"v":2,"id":"health","kind":"ping"}')
            response = channel.read_line()
            return bool(response) and '"pong":true' in response
        except OSError:
            return False
        finally:
            channel.close()

    def _health_loop(self) -> None:
        while not self._stopping.wait(self._health_interval):
            for worker in self._workers:
                if self._stopping.is_set():
                    return
                process = worker.process
                if process is not None and process.poll() is not None:
                    if process.returncode == 0:
                        # A clean exit is deliberate — an acknowledged
                        # shutdown broadcast racing this health pass, not a
                        # failure to heal.  Respawning here would churn a
                        # worker that pool.stop() is about to reap anyway.
                        continue
                    self._restart(worker)
                    continue
                healthy = False
                for _ in range(self._ping_retries + 1):
                    if self._ping(worker):
                        healthy = True
                        break
                    if self._stopping.is_set():
                        return
                if not healthy:
                    self._restart(worker)

    def _restart(self, worker: _Worker) -> None:
        with self._lock:
            if self._stopping.is_set():
                return
            process = worker.process
            if process is not None:
                try:
                    process.kill()
                except OSError:
                    pass
                process.wait()
            self._spawn(worker)
            try:
                self._wait_ready(worker)
            except RuntimeError:
                # The replacement failed to come up; the next health pass
                # will try again rather than crash the pool.
                return
            worker.restarts += 1
        if self.on_restart is not None:
            try:
                self.on_restart(worker.index)
            except Exception:  # noqa: BLE001 - replay is best-effort warming
                pass

    def restart_worker(self, index: int) -> None:
        """Restart one worker now (the health loop's path, callable in tests)."""
        self._restart(self._workers[index])

    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Stop health checking, then every worker (shutdown request, then
        escalating to terminate/kill), and clean up the run directory."""
        self._stopping.set()
        if self._health_thread is not None:
            self._health_thread.join()
        with self._lock:
            for worker in self._workers:
                process = worker.process
                if process is None or process.poll() is not None:
                    continue
                try:
                    sock = worker.address.connect(timeout=1.0)
                    channel = LineChannel(sock)
                    try:
                        channel.settimeout(2.0)
                        channel.read_line()  # hello
                        channel.send_line('{"v":2,"id":"stop","kind":"shutdown"}')
                        channel.read_line()  # acknowledgement
                    finally:
                        channel.close()
                except OSError:
                    pass
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()
            for worker in self._workers:
                try:
                    Path(worker.address.path).unlink()
                except OSError:
                    pass
        if self._owns_run_dir:
            try:
                self._run_dir.rmdir()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class Router:
    """The wire-protocol-v2 front end over a :class:`WorkerPool`.

    One listening socket; per-client-connection threads; per-connection
    lazy links to each worker (so responses need no id remapping and one
    slow query never blocks another client's).  See the module docstring
    for the routing and failure semantics.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        address: Address,
        pins: dict[str, int] | None = None,
        request_timeout: float = 120.0,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        max_inflight: int | None = None,
        durable: bool = False,
    ) -> None:
        """``max_inflight`` caps concurrently forwarded requests *per
        worker*: a request that would exceed it is shed at the router with an
        ``overloaded`` envelope instead of queueing behind the worker
        (``None`` keeps forwarding unbounded).  ``durable`` declares that the
        workers persist mutations in a WAL (``--wal-dir``), so a restarted
        worker's replayed datasets recover their mutations; without it the
        router stamps such datasets ``recovered_without_mutations`` in merged
        ``stats`` so clients can tell their acked writes were lost."""
        if max_inflight is not None and max_inflight < 1:
            raise ParameterError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self._pool = pool
        self._ring = HashRing(pool.count)
        self._pins = {
            name.lower(): index for name, index in (pins or {}).items()
        }
        for name, index in self._pins.items():
            if not 0 <= index < pool.count:
                raise ParameterError(
                    f"pin {name!r}={index} is outside the worker range "
                    f"[0, {pool.count})"
                )
        self._request_timeout = request_timeout
        self._max_line_bytes = max_line_bytes
        self._listener = address.listen()
        #: The bound endpoint (with the real port when TCP port 0 was asked).
        self.address = address.resolved(self._listener)
        self._hello_template: dict = {}
        #: lower-cased name -> canonical name, in first-open order; the
        #: source of truth for list/stat merge order, hello patching, and
        #: restart replay.
        self._open: "OrderedDict[str, str]" = OrderedDict()
        self._state_lock = threading.Lock()
        self._rr = 0
        self._max_inflight = max_inflight
        self._inflight = [0] * pool.count
        self._inflight_lock = threading.Lock()
        self._durable = durable
        #: lower-cased names of datasets with at least one acked mutate —
        #: the ones whose state a non-durable worker restart actually loses.
        self._mutated: set[str] = set()
        #: lower-cased names replayed onto a restarted worker *without* WAL
        #: recovery after acked mutations — flagged in merged ``stats``.
        self._lossy_recovered: set[str] = set()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._stop_lock = threading.Lock()
        pool.on_restart = self._replay_open_datasets

    # ------------------------------------------------------------------ #
    def shard_for(self, dataset: str) -> int:
        """The worker index owning ``dataset`` (pins win over the ring)."""
        lowered = dataset.lower()
        pinned = self._pins.get(lowered)
        return pinned if pinned is not None else self._ring.lookup(lowered)

    def start(self) -> None:
        """Fetch the hello template and begin accepting connections."""
        if self._accept_thread is not None:
            return
        self._hello_template = self._fetch_hello()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-router-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or a client's ``shutdown``)."""
        self.start()
        self._stopped.wait()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the router has fully stopped; ``True`` if it has."""
        return self._stopped.wait(timeout)

    def stop(self, *, stop_pool: bool = True) -> None:
        """Close the listener and client connections; optionally stop the
        pool too.  Idempotent and thread-safe."""
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self._stopping.set()
            try:
                self._listener.close()
            except OSError:
                pass
            if self._accept_thread is not None:
                self._accept_thread.join()
            if stop_pool:
                self._pool.stop()
            self._stopped.set()

    def _fetch_hello(self) -> dict:
        """Worker 0's hello frame — every worker advertises identically, so
        one fetch at startup is the router's template (its ``datasets`` list
        is patched per connection with the router-wide open set)."""
        sock = self._pool.worker_address(0).connect(timeout=10.0)
        channel = LineChannel(sock)
        try:
            channel.settimeout(10.0)
            line = channel.read_line()
        finally:
            channel.close()
        if not line:
            raise RuntimeError("worker 0 closed the connection before hello")
        payload = json.loads(line)
        if payload.get("frame") != "hello":
            raise RuntimeError(f"expected a hello frame from worker 0, got {line!r}")
        return payload

    def _accept_loop(self) -> None:
        try:
            self._listener.settimeout(_POLL_SECONDS)
        except OSError:  # stop() closed the listener before we started
            return
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve_client,
                args=(sock,),
                name="repro-router-client",
                daemon=True,
            ).start()

    # ------------------------------------------------------------------ #
    # Open-dataset tracking (merge order, hello patching, restart replay)
    # ------------------------------------------------------------------ #
    def _record_open(self, canonical: str) -> None:
        with self._state_lock:
            self._open.setdefault(canonical.lower(), canonical)

    def _record_close(self, name: str) -> None:
        with self._state_lock:
            self._open.pop(name.lower(), None)
            self._mutated.discard(name.lower())
            self._lossy_recovered.discard(name.lower())

    def _record_mutated(self, name: str) -> None:
        with self._state_lock:
            self._mutated.add(name.lower())
            # Fresh acked mutations supersede the lossy-recovery flag: the
            # client has a new, live baseline to reason from.
            self._lossy_recovered.discard(name.lower())

    def _acquire_slot(self, worker: int) -> bool:
        """Claim an in-flight slot on ``worker``; ``False`` means shed."""
        if self._max_inflight is None:
            return True
        with self._inflight_lock:
            if self._inflight[worker] >= self._max_inflight:
                return False
            self._inflight[worker] += 1
            return True

    def _release_slot(self, worker: int) -> None:
        if self._max_inflight is None:
            return
        with self._inflight_lock:
            self._inflight[worker] -= 1

    def _open_datasets(self) -> list[str]:
        with self._state_lock:
            return list(self._open.values())

    def _is_known_open(self, dataset: str) -> bool:
        with self._state_lock:
            return dataset.lower() in self._open

    def _replay_open_datasets(self, index: int) -> None:
        """Re-open a restarted worker's datasets so it is warm before the
        next query lands (the pool calls this after a restart).

        With durable (WAL-backed) workers, re-opening a dataset replays its
        mutation log, so the replacement answers within the certified
        ``eps_stale`` of the crashed worker.  Without a WAL the replacement
        serves the *pristine* dataset — any acked mutations are gone — so
        such datasets are flagged ``recovered_without_mutations``."""
        for name in self._open_datasets():
            if self.shard_for(name) != index:
                continue
            if not self._durable:
                with self._state_lock:
                    if name.lower() in self._mutated:
                        self._mutated.discard(name.lower())
                        self._lossy_recovered.add(name.lower())
            try:
                sock = self._pool.worker_address(index).connect(timeout=5.0)
            except OSError:
                continue  # best-effort: keep warming the remaining datasets
            channel = LineChannel(sock)
            try:
                channel.settimeout(self._request_timeout)
                channel.read_line()  # hello
                channel.send_line(encode_frame(
                    {"v": 2, "id": "replay", "kind": "open_dataset",
                     "dataset": name}
                ))
                channel.read_line()
            except OSError:
                continue
            finally:
                channel.close()

    # ------------------------------------------------------------------ #
    # Per-client-connection serving
    # ------------------------------------------------------------------ #
    def _serve_client(self, sock: socket.socket) -> None:
        session = _ClientSession(self, sock)
        try:
            session.run()
        finally:
            session.close()

    def __enter__(self) -> "Router":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Router(address={str(self.address)!r}, "
            f"workers={self._pool.count})"
        )


class _ClientSession:
    """One accepted client connection: lockstep request routing with lazy
    per-worker links (each link is this connection's private socket to one
    worker, reconnected on demand after a failure)."""

    def __init__(self, router: Router, sock: socket.socket) -> None:
        self._router = router
        self._channel = LineChannel(sock, max_line_bytes=router._max_line_bytes)
        self._links: dict[int, LineChannel] = {}

    def close(self) -> None:
        for link in self._links.values():
            link.close()
        self._links.clear()
        self._channel.close()

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        router = self._router
        hello = dict(router._hello_template)
        hello["datasets"] = router._open_datasets()
        try:
            self._channel.send_line(encode_frame(hello))
        except OSError:
            return
        self._channel.settimeout(_POLL_SECONDS)
        while not router._stopping.is_set():
            try:
                line = self._channel.read_line()
            except socket.timeout:
                continue
            except OversizedLineError as exc:
                if not self._answer(QueryResult.failure(
                    ERROR_BAD_REQUEST, str(exc)
                ), request_id=None):
                    return
                continue
            except OSError:
                return
            if line is None:
                return
            if not line.strip():
                continue
            try:
                if not self._route(line):
                    return
            except OSError:  # the client went away mid-response
                return

    def _answer(self, result: QueryResult, *, request_id: object,
                chunk_size: int | None = None) -> bool:
        """Send a router-generated envelope; ``False`` when the client is
        gone."""
        try:
            for frame in response_frames(
                result, id=request_id, chunk_size=chunk_size
            ):
                self._channel.send_line(frame)
        except OSError:
            return False
        return True

    def _answer_local(self, raw_line: str) -> bool:
        """Answer a line the router cannot (or must not) forward, shaped by
        the same envelope decoder every server uses — so a garbage line gets
        a byte-identical ``bad_request`` envelope from router and worker
        alike."""
        envelope = decode_envelope_line(raw_line)
        request = envelope.request
        if not isinstance(request, QueryResult):  # pragma: no cover - guard
            request = QueryResult.failure(
                ERROR_BAD_REQUEST, "the router cannot route this request"
            )
        return self._answer(
            request, request_id=envelope.id, chunk_size=envelope.chunk_size
        )

    def _unavailable(self, worker: int, payload: dict) -> bool:
        kind = payload.get("kind")
        dataset = payload.get("dataset")
        return self._answer(
            QueryResult.failure(
                ERROR_UNAVAILABLE,
                f"worker {worker} is unavailable (the router is replacing "
                "it); retry shortly",
                kind=kind if isinstance(kind, str) else None,
                dataset=dataset if isinstance(dataset, str) else None,
            ),
            request_id=payload.get("id"),
        )

    # ------------------------------------------------------------------ #
    def _route(self, line: str) -> bool:
        """Dispatch one request line; ``False`` when the client is gone."""
        arrival = time.monotonic()
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return self._answer_local(line)
        if not isinstance(payload, dict):
            return self._answer_local(line)
        kind = payload.get("kind")
        dataset = payload.get("dataset")
        if kind == "shutdown":
            return self._shutdown(line, payload)
        if kind in ("list_datasets", "stats"):
            return self._fan_out(line, payload)
        if kind == "ping":
            router = self._router
            with router._state_lock:
                worker = router._rr % router._pool.count
                router._rr += 1
            return self._forward(worker, line, payload) is not _GONE
        if kind == "describe" and dataset is None:
            return self._describe_service(line, payload)
        if isinstance(dataset, str) and dataset:
            return self._forward_sharded(line, payload, dataset, arrival)
        # No routable dataset: let the envelope decoder shape the error.
        return self._answer_local(line)

    def _restamp(
        self, line: str, payload: dict, arrival: float
    ) -> tuple[str, dict] | None:
        """Charge router-side latency against the request's deadline budget.

        A ``deadline_ms`` on the envelope is the *remaining* budget when the
        hop received it, so before forwarding the router subtracts the time
        the request spent here and re-encodes; the worker then sees only
        what is genuinely left.  ``None`` means the budget is already spent —
        the caller sheds locally with ``deadline_exceeded`` instead of
        forwarding work whose answer nobody is waiting for."""
        deadline_ms = payload.get("deadline_ms")
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or not math.isfinite(deadline_ms)
            or deadline_ms <= 0
        ):
            return line, payload  # absent or malformed: the worker decides
        remaining = deadline_ms - (time.monotonic() - arrival) * 1000.0
        if remaining <= 0:
            return None
        payload = {**payload, "deadline_ms": remaining}
        return encode_frame(payload), payload

    def _link(self, worker: int) -> LineChannel:
        link = self._links.get(worker)
        if link is not None:
            return link
        sock = self._router._pool.worker_address(worker).connect(timeout=10.0)
        link = LineChannel(sock)
        link.settimeout(self._router._request_timeout)
        try:
            if link.read_line() is None:  # the worker's hello frame
                raise ConnectionError(f"worker {worker} closed the connection")
        except OSError:
            link.close()
            raise
        self._links[worker] = link
        return link

    def _drop_link(self, worker: int) -> None:
        link = self._links.pop(worker, None)
        if link is not None:
            link.close()

    def _forward(self, worker: int, line: str, payload: dict) -> str | None:
        """Forward ``line`` to ``worker``, relay every response frame to the
        client, and return the terminal frame — or ``None`` after answering
        the client with an ``unavailable`` envelope, or :data:`_GONE` when
        the *client* went away."""
        try:
            link = self._link(worker)
            link.send_line(line)
            while True:
                frame = link.read_line()
                if frame is None:
                    raise ConnectionError(f"worker {worker} hung up")
                self._channel.send_line(frame)  # OSError -> client gone
                if not frame.startswith(_PARTIAL_PREFIX):
                    return frame
        except OSError as exc:
            self._drop_link(worker)
            if exc.args and exc.args[0] is _CLIENT_GONE:
                return _GONE  # pragma: no cover - defensive
            # Distinguish "worker died" from "client died": a send to the
            # client raises through _channel, whose failure we surface by
            # attempting the unavailable answer — if the client is gone too,
            # that attempt reports it.
            if not self._unavailable(worker, payload):
                return _GONE
            return None
        except ConnectionError:
            self._drop_link(worker)
            if not self._unavailable(worker, payload):
                return _GONE
            return None

    def _forward_sharded(
        self, line: str, payload: dict, dataset: str, arrival: float
    ) -> bool:
        router = self._router
        worker = router.shard_for(dataset)
        stamped = self._restamp(line, payload, arrival)
        if stamped is None:
            return self._answer(
                QueryResult.failure(
                    ERROR_DEADLINE_EXCEEDED,
                    "deadline expired at the router before forwarding",
                    kind=payload.get("kind") if isinstance(payload.get("kind"), str) else None,
                    dataset=dataset,
                ),
                request_id=payload.get("id"),
            )
        line, payload = stamped
        if not router._acquire_slot(worker):
            return self._answer(
                QueryResult.failure(
                    ERROR_OVERLOADED,
                    f"worker {worker} is at its in-flight cap "
                    f"({router._max_inflight}); back off and retry",
                    kind=payload.get("kind") if isinstance(payload.get("kind"), str) else None,
                    dataset=dataset,
                ),
                request_id=payload.get("id"),
            )
        try:
            terminal = self._forward(worker, line, payload)
        finally:
            router._release_slot(worker)
        if terminal is _GONE:
            return False
        if terminal is None:
            return True  # unavailable envelope already sent
        kind = payload.get("kind")
        # Track open/close/mutate state on the cold paths only: control
        # responses, and the first successful data-plane touch of a dataset.
        if kind in (
            "open_dataset", "close_dataset", "mutate"
        ) or not router._is_known_open(
            dataset
        ):
            try:
                frame = json.loads(terminal)
            except json.JSONDecodeError:  # pragma: no cover - worker bug
                return True
            if frame.get("ok") is True:
                if kind == "close_dataset":
                    closed = (frame.get("value") or {}).get("dataset")
                    router._record_close(str(closed or dataset))
                else:
                    opened = frame.get("dataset")
                    if kind == "open_dataset":
                        opened = (frame.get("value") or {}).get("dataset", opened)
                    if isinstance(opened, str):
                        router._record_open(opened)
                        if kind == "mutate":
                            router._record_mutated(opened)
        return True

    # ------------------------------------------------------------------ #
    def _collect(self, line: str, payload: dict) -> list[dict] | None:
        """Forward ``line`` to every worker *without* relaying, returning
        the decoded single-line responses in worker order; answers the
        client with ``unavailable`` (returning ``None``) if any worker is
        down, and raises ``OSError`` if the client is."""
        responses: list[dict] = []
        for worker in range(self._router._pool.count):
            try:
                link = self._link(worker)
                link.send_line(line)
                frame = link.read_line()
                if frame is None:
                    raise ConnectionError(f"worker {worker} hung up")
                responses.append(json.loads(frame))
            except (OSError, ConnectionError, json.JSONDecodeError):
                self._drop_link(worker)
                if not self._unavailable(worker, payload):
                    raise OSError(_CLIENT_GONE) from None
                return None
        return responses

    def _merge_dataset_lists(self, per_worker: list[list[str]]) -> list[str]:
        """Union of the workers' open-dataset lists, ordered by the router's
        first-open order (the same order one process would report)."""
        present: dict[str, str] = {}
        for names in per_worker:
            for name in names:
                present.setdefault(name.lower(), name)
        ordered: list[str] = []
        with self._router._state_lock:
            open_order = list(self._router._open)
        for lowered in open_order:
            if lowered in present:
                ordered.append(present.pop(lowered))
        ordered.extend(present.values())
        return ordered

    def _fan_out(self, line: str, payload: dict) -> bool:
        responses = self._collect(line, payload)
        if responses is None:
            return True
        failed = next((r for r in responses if r.get("ok") is not True), None)
        if failed is not None:
            # A worker refused (e.g. malformed request): its envelope is the
            # answer, identical to what one server would have said.
            try:
                self._channel.send_line(encode_frame(failed))
            except OSError:
                return False
            return True
        template = dict(responses[0])
        if payload.get("kind") == "list_datasets":
            template["value"] = {
                "datasets": self._merge_dataset_lists(
                    [r.get("value", {}).get("datasets", []) for r in responses]
                )
            }
        else:
            template["value"] = self._merge_stats(
                [r.get("value", {}) for r in responses]
            )
        try:
            self._channel.send_line(encode_frame(template))
        except OSError:
            return False
        return True

    def _merge_stats(self, values: list[dict]) -> dict:
        """One ``stats`` value from many: per-dataset entries are disjoint
        across workers (sharding) so they merge by union; totals come from
        :func:`merge_statistics_totals` — the same definition a single
        server uses, so fan-out cannot under-report any counter."""
        per_dataset: dict[str, dict] = {}
        for value in values:
            per_dataset.update(value.get("datasets", {}))
        ordered = self._merge_dataset_lists([list(per_dataset)])
        datasets = {name: per_dataset[name] for name in ordered}
        with self._router._state_lock:
            lossy = set(self._router._lossy_recovered)
        if lossy:
            datasets = {
                name: (
                    {**detail, "recovered_without_mutations": True}
                    if name.lower() in lossy
                    else detail
                )
                for name, detail in datasets.items()
            }
        engine_dicts = [
            engine_stats
            for detail in datasets.values()
            for engine_stats in detail.get("engines", {}).values()
        ]
        return {
            "datasets": datasets,
            "totals": merge_statistics_totals(engine_dicts),
        }

    def _describe_service(self, line: str, payload: dict) -> bool:
        terminal = self._forward_collect_one(0, line, payload)
        if terminal is None:
            return True
        if terminal is _GONE:
            return False
        if terminal.get("ok") is True and isinstance(terminal.get("value"), dict):
            terminal = dict(terminal)
            value = dict(terminal["value"])
            value["datasets"] = self._router._open_datasets()
            terminal["value"] = value
        try:
            self._channel.send_line(encode_frame(terminal))
        except OSError:
            return False
        return True

    def _forward_collect_one(
        self, worker: int, line: str, payload: dict
    ) -> dict | None:
        """Round-trip one single-line request to one worker without
        relaying; ``None`` after an ``unavailable`` answer, :data:`_GONE`
        if the client died."""
        try:
            link = self._link(worker)
            link.send_line(line)
            frame = link.read_line()
            if frame is None:
                raise ConnectionError(f"worker {worker} hung up")
            return json.loads(frame)
        except (OSError, ConnectionError, json.JSONDecodeError):
            self._drop_link(worker)
            if not self._unavailable(worker, payload):
                return _GONE
            return None

    def _shutdown(self, line: str, payload: dict) -> bool:
        """Broadcast shutdown to every worker, acknowledge the client with
        the first worker's envelope, then stop the router itself."""
        router = self._router
        acknowledgement: dict | None = None
        for worker in range(router._pool.count):
            response = self._forward_collect_one(worker, line, payload)
            if response is not None and response is not _GONE:
                acknowledgement = acknowledgement or response
        sent = False
        if acknowledgement is not None:
            try:
                self._channel.send_line(encode_frame(acknowledgement))
                sent = True
            except OSError:
                sent = False
        threading.Thread(
            target=router.stop, name="repro-router-stop", daemon=True
        ).start()
        return sent and False  # the connection's work is done either way


#: Sentinels distinguishing "client went away" from ordinary outcomes.
_GONE = object()
_CLIENT_GONE = "repro-router-client-gone"
