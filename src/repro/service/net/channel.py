"""Byte-level socket plumbing: addresses and line-framed channels.

Everything that moves over a socket in this package is one JSONL line at a
time — the same frames the stdin/stdout serve loop speaks.  This module owns
the two primitives under that: :class:`Address` (parse / listen / connect for
TCP and Unix-domain endpoints) and :class:`LineChannel` (a buffered,
newline-framed reader/writer over a connected socket with a hard per-line
byte limit, so one hostile peer cannot balloon the server's memory).
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, replace
from pathlib import Path

from ...exceptions import ParameterError

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "Address",
    "parse_address",
    "LineChannel",
    "OversizedLineError",
]

#: Hard cap on one inbound line.  Requests are tiny (a few hundred bytes);
#: the cap only exists so a peer streaming garbage without a newline is
#: bounded.  Responses can legitimately be large (all_pairs), so outbound
#: lines are never limited.
DEFAULT_MAX_LINE_BYTES = 64 * 1024 * 1024


class OversizedLineError(ParameterError):
    """An inbound line exceeded the channel's byte limit.

    The channel drains the offending line (through its terminating newline)
    before raising, so the stream stays line-aligned and the connection can
    keep serving subsequent requests.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(f"request line exceeds the {limit}-byte frame limit")
        self.limit = limit


@dataclass(frozen=True)
class Address:
    """One serveable endpoint: a TCP ``host:port`` or a Unix socket path."""

    family: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __str__(self) -> str:
        if self.family == "unix":
            return f"unix:{self.path}"
        return f"{self.host or '127.0.0.1'}:{self.port}"

    # ------------------------------------------------------------------ #
    def listen(self, *, backlog: int = 128) -> socket.socket:
        """A bound, listening socket for this address.

        TCP sockets bind with ``SO_REUSEADDR``; Unix sockets unlink a stale
        path first (rebinding the same path is how a restarted worker keeps
        its address).  Call :meth:`resolved` with the returned socket to
        learn the actual port when binding port 0.
        """
        if self.family == "unix":
            path = Path(self.path)
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.bind(str(path))
                sock.listen(backlog)
            except OSError:
                sock.close()
                raise
            return sock
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host or "127.0.0.1", self.port))
            sock.listen(backlog)
        except OSError:
            sock.close()
            raise
        return sock

    def resolved(self, listener: socket.socket) -> "Address":
        """This address with the listener's actual port (port-0 binds)."""
        if self.family == "unix":
            return self
        _, port = listener.getsockname()[:2]
        return replace(self, port=port)

    def connect(self, *, timeout: float | None = None) -> socket.socket:
        """A connected socket to this address (timeout applies to connect
        only; the caller picks the I/O timeout afterwards)."""
        if self.family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: str | tuple[str, int] = self.path
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (self.host or "127.0.0.1", self.port)
        try:
            sock.settimeout(timeout)
            sock.connect(target)
            sock.settimeout(None)
        except OSError:
            sock.close()
            raise
        return sock


def parse_address(spec: str) -> Address:
    """Parse ``HOST:PORT``, ``tcp:HOST:PORT``, ``unix:PATH``, or a bare
    filesystem path into an :class:`Address`.

    A bare spec counts as TCP when its last colon-separated field is a port
    number (``localhost:7077``, ``:0``); anything else is a Unix socket path
    (``/tmp/repro.sock``) — the two CLI flags are explicit, so the heuristic
    only serves ``SimRankClient(address=...)`` convenience.
    """
    if not spec:
        raise ParameterError("address must not be empty")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ParameterError("unix: address needs a socket path")
        return Address(family="unix", path=path)
    body = spec[len("tcp:"):] if spec.startswith("tcp:") else spec
    host, sep, port = body.rpartition(":")
    if sep and (port.isdigit() or port.lstrip("-").isdigit()):
        port_num = int(port)
        if not 0 <= port_num <= 65535:
            raise ParameterError(f"port must be in [0, 65535], got {port_num}")
        return Address(family="tcp", host=host, port=port_num)
    if spec.startswith("tcp:"):
        raise ParameterError(f"tcp: address needs HOST:PORT, got {spec!r}")
    return Address(family="unix", path=spec)


class LineChannel:
    """Newline-framed text I/O over one connected socket.

    Reads are single-threaded by design (one reader per connection); writes
    take an internal lock so response frames from concurrent callers never
    interleave mid-line.  ``read_line`` honours the socket timeout set via
    :meth:`settimeout` (``socket.timeout`` propagates — the server loops use
    short timeouts as their stop-polling mechanism).
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ) -> None:
        self._sock = sock
        self._buffer = bytearray()
        self._eof = False
        #: True while an oversized line is being discarded — survives a
        #: ``socket.timeout`` mid-discard so the next ``read_line`` resumes
        #: discarding instead of returning the line's tail as a frame.
        self._discarding = False
        self._send_lock = threading.Lock()
        self.max_line_bytes = max_line_bytes

    def settimeout(self, timeout: float | None) -> None:
        """Set the socket timeout governing subsequent reads."""
        self._sock.settimeout(timeout)

    def fileno(self) -> int:
        """The underlying socket's descriptor (for select/poll callers)."""
        return self._sock.fileno()

    # ------------------------------------------------------------------ #
    def read_line(self) -> str | None:
        """The next line (newline stripped), or ``None`` at EOF.

        Raises :class:`OversizedLineError` when a line exceeds the limit —
        after discarding through its newline, so the next call reads the
        following line.  An unterminated final line before EOF is returned
        as-is (matching the stdin pump's tolerance).
        """
        if self._discarding:
            # A timeout interrupted a previous discard; finish it before
            # surfacing anything, then report the frame-limit breach the
            # interrupted call never got to raise.
            self._discard_current_line()
            raise OversizedLineError(self.max_line_bytes)
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                if newline > self.max_line_bytes:
                    # A complete-but-oversized line (it can arrive whole in
                    # one recv): drop it, keep the stream aligned.
                    del self._buffer[: newline + 1]
                    raise OversizedLineError(self.max_line_bytes)
                line = self._buffer[:newline]
                del self._buffer[: newline + 1]
                return line.decode("utf-8", errors="replace")
            if self._eof:
                if self._buffer:
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line.decode("utf-8", errors="replace")
                return None
            if len(self._buffer) > self.max_line_bytes:
                self._discard_current_line()
                raise OversizedLineError(self.max_line_bytes)
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
            else:
                self._buffer.extend(chunk)

    def _discard_current_line(self) -> None:
        """Throw away buffered bytes up to and including the next newline,
        reading (and discarding) further input until it arrives.  A timeout
        raised by ``recv`` leaves :attr:`_discarding` set, so the next
        ``read_line`` resumes here rather than treating the tail as data."""
        self._discarding = True
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                del self._buffer[: newline + 1]
                self._discarding = False
                return
            self._buffer.clear()
            if self._eof:
                self._discarding = False
                return
            chunk = self._sock.recv(65536)
            if not chunk:
                self._eof = True
            else:
                self._buffer.extend(chunk)

    def send_line(self, line: str) -> None:
        """Write one line (newline appended), atomically w.r.t. other
        senders on this channel."""
        data = line.encode("utf-8") + b"\n"
        with self._send_lock:
            self._sock.sendall(data)

    def close(self) -> None:
        """Shut down and close the socket (idempotent, never raises)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
