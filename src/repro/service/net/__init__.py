"""Socket transports and multi-process sharded serving.

Layers, bottom up:

* :mod:`~repro.service.net.channel` — addresses (TCP / Unix-domain) and
  newline-framed socket channels with a per-line byte cap;
* :mod:`~repro.service.net.socket_server` — :class:`SocketServer`, the
  wire-protocol-v2 serve loop over sockets (``repro serve --listen/--unix``);
* :mod:`~repro.service.net.router` — :class:`WorkerPool` (spawn,
  health-check, restart ``repro serve`` children) and :class:`Router`
  (per-dataset sharding, control-plane fan-out, failover envelopes), the
  engine behind ``repro router``.
"""

from .channel import (
    DEFAULT_MAX_LINE_BYTES,
    Address,
    LineChannel,
    OversizedLineError,
    parse_address,
)
from .router import HashRing, Router, WorkerPool
from .socket_server import SocketServer

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "Address",
    "parse_address",
    "LineChannel",
    "OversizedLineError",
    "SocketServer",
    "HashRing",
    "WorkerPool",
    "Router",
]
