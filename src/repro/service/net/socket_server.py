"""A socket front end for :class:`~repro.service.SimRankService`.

:class:`SocketServer` serves wire protocol v2 over TCP or Unix-domain
sockets.  Each accepted connection gets exactly the stdin/stdout serve
loop's contract — an opening ``hello`` frame, one response per request line
**in arrival order** (monolithic envelopes or ``partial``/``done`` streams),
``id`` echo on every frame — with up to ``workers`` requests of a
connection executing behind the head of its line.  All connections share
one :class:`~repro.service.ParallelExecutor` and therefore one warm
service: sessions opened by one client answer every client.  ``ping``
alone bypasses the executor — it is answered from the connection's reader
thread — so liveness probes (the worker pool's health checks) stay
responsive while every executor thread is deep in a long query.

Hostile peers are contained per connection: lines over the byte limit are
answered with a ``bad_request`` envelope (the connection survives), garbage
lines decode into error envelopes exactly as on stdin, and a client that
disconnects mid-stream takes down only its own connection threads.  An
acknowledged ``shutdown`` control request stops the whole server: the
listener closes, in-flight requests drain, every connection is told to
stop, and :meth:`serve_forever` returns — which is how one ``shutdown``
line through any transport stops a worker process.
"""

from __future__ import annotations

import queue
import socket
import threading
from concurrent.futures import Future

from ...exceptions import ParameterError
from ..control import PingRequest
from ..parallel import ParallelExecutor
from ..results import ERROR_BAD_REQUEST, QueryResult
from ..service import SimRankService
from ..wire import RequestEnvelope, decode_envelope_line, encode_frame, response_frames
from .channel import DEFAULT_MAX_LINE_BYTES, Address, LineChannel, OversizedLineError

__all__ = ["SocketServer"]

#: How often blocked reads wake up to notice a stop request, in seconds.
_POLL_SECONDS = 0.2

#: How long a torn-down connection's full response queue may sit unmoved
#: while the writer is inside a send before the socket is closed under it —
#: breaking a ``sendall`` wedged on a client that stopped reading, so
#: :meth:`SocketServer.stop` is never held hostage by one hostile peer.
_SEND_STALL_SECONDS = 5.0


class SocketServer:
    """Serve one :class:`SimRankService` over a TCP or Unix socket.

    Parameters
    ----------
    service:
        The (thread-safe) service answering requests.
    address:
        Where to listen.  TCP port 0 binds an ephemeral port; the resolved
        :attr:`address` tells callers what was actually bound.
    workers:
        Threads in the shared executor pool (the per-connection in-flight
        window is ``4 * workers``, like the stdin pump).
    chunk_size:
        Server-side default for streaming large ``single_source`` /
        ``all_pairs`` values; a request's own ``chunk_size`` wins.
    hello:
        Whether connections open with a ``hello`` frame (on by default;
        strictly-v1 consumers can turn it off).
    max_line_bytes:
        Per-line inbound byte cap; oversized lines are answered with
        ``bad_request`` envelopes instead of growing the buffer unboundedly.
    max_pending:
        Bound on requests queued or executing across all connections;
        submissions past it are shed with an ``overloaded`` envelope
        (``None`` keeps the pre-PR-10 unbounded behaviour).
    degrade_pending:
        Pressure threshold at which exact ``single_source`` queries degrade
        to the cascade path (stamped ``degraded: true``); ``None`` disables.
    """

    def __init__(
        self,
        service: SimRankService,
        *,
        address: Address,
        workers: int = 1,
        chunk_size: int | None = None,
        hello: bool = True,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        max_pending: int | None = None,
        degrade_pending: int | None = None,
    ) -> None:
        if max_line_bytes < 1024:
            raise ParameterError(
                f"max_line_bytes must be >= 1024, got {max_line_bytes}"
            )
        self._service = service
        self._executor = ParallelExecutor(
            service,
            workers=workers,
            max_pending=max_pending,
            degrade_pending=degrade_pending,
        )
        self._chunk_size = chunk_size
        self._hello = hello
        self._max_line_bytes = max_line_bytes
        self._listener = address.listen()
        #: The bound endpoint (with the real port when TCP port 0 was asked).
        self.address = address.resolved(self._listener)
        self._connections: set[_Connection] = set()
        self._connections_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._stop_lock = threading.Lock()

    @property
    def service(self) -> SimRankService:
        """The service this server fronts."""
        return self._service

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin accepting connections on a background thread."""
        if self._accept_thread is not None:
            return
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-socket-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Accept and serve until :meth:`stop` (or an acknowledged
        ``shutdown`` request) brings the server down."""
        self.start()
        self._stopped.wait()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully stopped; ``True`` if it has."""
        return self._stopped.wait(timeout)

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, close every connection,
        and shut the executor down.  Idempotent and thread-safe; returns
        once the server is fully stopped."""
        with self._stop_lock:
            if self._stopped.is_set():
                return
            self._stopping.set()
            try:
                self._listener.close()
            except OSError:
                pass
            if self._accept_thread is not None:
                self._accept_thread.join()
            with self._connections_lock:
                connections = list(self._connections)
            for connection in connections:
                connection.join()
            self._executor.close()
            self._stopped.set()

    def _initiate_shutdown(self) -> None:
        """Asynchronously run :meth:`stop` — called from a connection's
        writer thread after it delivered a ``shutdown`` acknowledgement
        (the writer cannot join itself)."""
        threading.Thread(
            target=self.stop, name="repro-socket-stop", daemon=True
        ).start()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        try:
            self._listener.settimeout(_POLL_SECONDS)
        except OSError:  # stop() closed the listener before we started
            return
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed under us — stopping
                break
            connection = _Connection(self, sock)
            with self._connections_lock:
                self._connections.add(connection)
            connection.start()

    def _forget(self, connection: "_Connection") -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    def __enter__(self) -> "SocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SocketServer(address={str(self.address)!r})"


class _Connection:
    """One accepted socket: a reader thread feeding the shared executor and
    a writer thread emitting ordered response frames — the socket twin of
    the stdin pump in ``repro.cli``."""

    def __init__(self, server: SocketServer, sock: socket.socket) -> None:
        self._server = server
        self._channel = LineChannel(
            sock, max_line_bytes=server._max_line_bytes
        )
        self._pending: queue.Queue = queue.Queue(
            maxsize=server._executor.workers * 4
        )
        self._stop = threading.Event()
        self._send_failed = threading.Event()
        #: True while the writer is inside a socket send — the only state in
        #: which a full queue during teardown justifies closing the socket
        #: under it (a writer waiting on a slow query must be left to drain).
        self._sending = False
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-socket-reader", daemon=True
        )
        self._writer = threading.Thread(
            target=self._write_loop, name="repro-socket-writer", daemon=True
        )

    def start(self) -> None:
        self._writer.start()
        self._reader.start()

    def join(self) -> None:
        """Stop this connection and wait for both its threads."""
        self._stop.set()
        self._reader.join()
        self._writer.join()

    # ------------------------------------------------------------------ #
    def _done_reading(self) -> bool:
        return (
            self._stop.is_set()
            or self._send_failed.is_set()
            or self._server._stopping.is_set()
        )

    def _read_loop(self) -> None:
        self._channel.settimeout(_POLL_SECONDS)
        try:
            while not self._done_reading():
                try:
                    line = self._channel.read_line()
                except socket.timeout:
                    continue
                except OversizedLineError as exc:
                    if not self._enqueue_failure(
                        QueryResult.failure(ERROR_BAD_REQUEST, str(exc))
                    ):
                        break
                    continue
                except OSError:
                    break
                if line is None:  # client EOF
                    break
                if not line.strip():
                    continue
                envelope = decode_envelope_line(line)
                if isinstance(envelope.request, PingRequest):
                    # Answer pings out-of-band: ping is O(1) and must stay
                    # responsive while the shared executor is deep in a long
                    # query, or the pool's health checker would mistake a
                    # busy worker for a wedged one and kill it mid-request.
                    # Routing the pre-completed future through the same
                    # queue keeps this connection's responses ordered.
                    future: Future = Future()
                    future.set_result(
                        self._server._service.execute_request(envelope.request)
                    )
                else:
                    # The whole envelope goes in so the executor sees the
                    # request's deadline and can shed expired work.
                    future = self._server._executor.submit(envelope)
                if not self._offer((envelope, future)):
                    break
        except Exception:  # noqa: BLE001 - raced executor close at shutdown
            pass
        finally:
            self._finish_writer()
            self._channel.close()
            self._server._forget(self)

    def _enqueue_failure(self, failure: QueryResult) -> bool:
        future: Future = Future()
        future.set_result(failure)
        return self._offer((RequestEnvelope(request=failure), future))

    def _offer(self, item: tuple) -> bool:
        """Queue ``item`` for the writer, never blocking past teardown: the
        bounded put is retried on a short timeout so a writer wedged in a
        send to a stalled client cannot pin the reader (and through it
        ``join()``) forever; ``False`` once the connection is going down."""
        while True:
            try:
                self._pending.put(item, timeout=_POLL_SECONDS)
                return True
            except queue.Full:
                if self._done_reading():
                    return False

    def _finish_writer(self) -> None:
        """Hand the writer its end-of-queue sentinel and wait for it.

        If the queue stays full during teardown while the writer sits in a
        socket send (a client that submits requests but never reads its
        responses), the socket is closed under the writer after
        ``_SEND_STALL_SECONDS`` — its send raises, it drains the queue
        without writing, and the sentinel goes through.  A writer merely
        waiting on a slow in-flight query is left alone: those futures
        resolve, which is the in-flight drain ``stop()`` promises.
        """
        stalled = 0.0
        while True:
            try:
                self._pending.put(None, timeout=_POLL_SECONDS)
                break
            except queue.Full:
                if not (self._done_reading() and self._sending):
                    stalled = 0.0
                    continue
                stalled += _POLL_SECONDS
                if stalled >= _SEND_STALL_SECONDS:
                    self._send_failed.set()
                    self._channel.close()
        # The writer drains what is queued, then this connection is done.
        self._writer.join()

    def _write_loop(self) -> None:
        if self._server._hello:
            self._sending = True
            try:
                self._channel.send_line(
                    encode_frame(self._server._service.hello_payload())
                )
            except OSError:
                self._send_failed.set()
            finally:
                self._sending = False
        while True:
            item = self._pending.get()
            if item is None:
                return
            envelope, future = item
            result = future.result()  # executor futures never raise
            if not self._send_failed.is_set():
                self._sending = True
                try:
                    for frame in response_frames(
                        result,
                        id=envelope.id,
                        chunk_size=envelope.chunk_size or self._server._chunk_size,
                    ):
                        self._channel.send_line(frame)
                except OSError:
                    # The client went away mid-response: keep draining so the
                    # reader never blocks on a full queue, but write nothing.
                    self._send_failed.set()
                    continue
                finally:
                    self._sending = False
                if result.ok and result.kind == "shutdown":
                    self._server._initiate_shutdown()
