"""Typed control-plane requests: managing the service over the wire.

Protocol v2 splits the wire API into a **data plane** (the query kinds in
:mod:`repro.service.queries`) and a **control plane** — the administrative
operations a remote caller needs to manage a long-lived server:

* :class:`PingRequest` — liveness probe; answers ``{"pong": true}``;
* :class:`OpenDatasetRequest` — open a registry dataset session eagerly
  (queries open sessions lazily; an explicit open lets a client pay the
  graph-load/index-build cost up front);
* :class:`CloseDatasetRequest` — drop a session (graph, engines, caches);
* :class:`ListDatasetsRequest` — names of the open sessions;
* :class:`StatsRequest` — the aggregate statistics snapshot (the same dict
  ``repro serve --stats`` dumps at shutdown, available on demand);
* :class:`DescribeRequest` — self-description: the service (protocol
  version, backends, open sessions, config) or one open session (graph
  size, per-engine plans, cache state, statistics);
* :class:`MutateRequest` — apply an edge delta (add/remove) to one open
  dataset's live index, optionally forcing a re-freeze; the ack reports the
  new ``index_version`` and the certified staleness bound;
* :class:`ShutdownRequest` — ask a serve loop to stop accepting requests,
  drain what is in flight, and exit cleanly.

Control requests ride the same envelope as queries — one JSON object per
line with a ``kind`` discriminator, optionally wrapped with ``id``/``v`` —
and come back as the same :class:`~repro.service.results.QueryResult`
envelope (``kind`` echoes the control kind, ``value`` carries the control
payload, failures are structured error envelopes).  Because they are
dispatched by :meth:`~repro.service.service.SimRankService.execute_wire`,
every consumer of the service — ``repro batch``, ``repro serve``, the
:class:`~repro.service.parallel.ParallelExecutor`, the
:class:`~repro.service.client.SimRankClient` — speaks the control plane
with no transport-specific code.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from ..exceptions import ParameterError, WireFormatError
from .queries import QUERY_KINDS, Query, fields_from_wire, query_from_wire

__all__ = [
    "ControlRequest",
    "PingRequest",
    "OpenDatasetRequest",
    "CloseDatasetRequest",
    "ListDatasetsRequest",
    "StatsRequest",
    "DescribeRequest",
    "MutateRequest",
    "ShutdownRequest",
    "CONTROL_KINDS",
    "control_from_wire",
    "request_from_wire",
]


def _check_dataset(value: object) -> None:
    if not isinstance(value, str) or not value.strip():
        raise ParameterError(f"dataset must be a non-empty string, got {value!r}")


@dataclass(frozen=True)
class ControlRequest:
    """Base class for control-plane requests (no fields of its own)."""

    #: Wire-protocol discriminator; overridden by each concrete kind.
    kind: ClassVar[str] = ""

    def to_wire(self) -> dict:
        """Flat JSON-able dict form: ``kind`` plus every dataclass field."""
        payload = {"kind": self.kind}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload


@dataclass(frozen=True)
class PingRequest(ControlRequest):
    """Liveness probe; the cheapest possible round-trip."""

    kind: ClassVar[str] = "ping"


@dataclass(frozen=True)
class OpenDatasetRequest(ControlRequest):
    """Open (or touch) the session for a registry dataset eagerly."""

    kind: ClassVar[str] = "open_dataset"

    dataset: str

    def __post_init__(self) -> None:
        _check_dataset(self.dataset)


@dataclass(frozen=True)
class CloseDatasetRequest(ControlRequest):
    """Drop one dataset session (its graph, engines, and caches)."""

    kind: ClassVar[str] = "close_dataset"

    dataset: str

    def __post_init__(self) -> None:
        _check_dataset(self.dataset)


@dataclass(frozen=True)
class ListDatasetsRequest(ControlRequest):
    """Names of the open dataset sessions, in opening order."""

    kind: ClassVar[str] = "list_datasets"


@dataclass(frozen=True)
class StatsRequest(ControlRequest):
    """The aggregate statistics snapshot, on demand."""

    kind: ClassVar[str] = "stats"


@dataclass(frozen=True)
class DescribeRequest(ControlRequest):
    """Describe the service (no ``dataset``) or one open session."""

    kind: ClassVar[str] = "describe"

    dataset: str | None = None

    def __post_init__(self) -> None:
        if self.dataset is not None:
            _check_dataset(self.dataset)


def _check_edges(edges: object, field_name: str) -> tuple[tuple[int, int], ...]:
    if isinstance(edges, (str, bytes)) or not isinstance(edges, (list, tuple)):
        raise ParameterError(
            f"{field_name} must be a list of (u, v) edges, got {edges!r}"
        )
    normalized = []
    for edge in edges:
        if (
            isinstance(edge, (str, bytes))
            or not isinstance(edge, (list, tuple))
            or len(edge) != 2
        ):
            raise ParameterError(
                f"{field_name} entries must be (u, v) pairs, got {edge!r}"
            )
        u, v = edge
        if isinstance(u, bool) or isinstance(v, bool) or not (
            isinstance(u, int) and isinstance(v, int)
        ):
            raise ParameterError(
                f"{field_name} entries must hold integers, got {edge!r}"
            )
        if u < 0 or v < 0:
            raise ParameterError(
                f"{field_name} entries must be non-negative, got {edge!r}"
            )
        normalized.append((u, v))
    return tuple(normalized)


@dataclass(frozen=True)
class MutateRequest(ControlRequest):
    """Apply an edge delta to one open dataset's live index.

    ``add``/``remove`` are lists of ``[u, v]`` node-id pairs; ``refreeze``
    additionally compacts all accumulated deltas into a fresh frozen store
    (restoring rebuild-parity answers) before acknowledging.  The ack
    carries the new monotonic ``index_version``, the certified staleness
    bound ``epsilon_stale``, and the affected-set sizes.
    """

    kind: ClassVar[str] = "mutate"

    dataset: str
    add: tuple = ()
    remove: tuple = ()
    refreeze: bool = False
    #: Optional client-supplied idempotency token.  When the worker keeps a
    #: WAL, a replayed ``mutation_id`` answers with the originally recorded
    #: ack instead of applying the delta twice — which is what makes
    #: retrying a timed-out ``mutate`` safe.
    mutation_id: str | None = None

    def __post_init__(self) -> None:
        _check_dataset(self.dataset)
        object.__setattr__(self, "add", _check_edges(self.add, "add"))
        object.__setattr__(self, "remove", _check_edges(self.remove, "remove"))
        if not isinstance(self.refreeze, bool):
            raise ParameterError(
                f"refreeze must be a boolean, got {self.refreeze!r}"
            )
        if self.mutation_id is not None and (
            not isinstance(self.mutation_id, str) or not self.mutation_id.strip()
        ):
            raise ParameterError(
                f"mutation_id must be a non-empty string, got {self.mutation_id!r}"
            )

    def to_wire(self) -> dict:
        payload = super().to_wire()
        # Tuples become JSON arrays anyway; emit lists so to_wire output
        # round-trips through json.loads to an equal dict.
        payload["add"] = [list(edge) for edge in self.add]
        payload["remove"] = [list(edge) for edge in self.remove]
        # Omitted when unset so pre-PR-10 wire forms are byte-identical.
        if self.mutation_id is None:
            del payload["mutation_id"]
        return payload


@dataclass(frozen=True)
class ShutdownRequest(ControlRequest):
    """Ask a serve loop to drain in-flight requests and exit cleanly."""

    kind: ClassVar[str] = "shutdown"


#: Wire discriminator -> control class, for :func:`control_from_wire`.
CONTROL_KINDS: dict[str, type[ControlRequest]] = {
    cls.kind: cls
    for cls in (
        PingRequest,
        OpenDatasetRequest,
        CloseDatasetRequest,
        ListDatasetsRequest,
        StatsRequest,
        DescribeRequest,
        MutateRequest,
        ShutdownRequest,
    )
}


def control_from_wire(payload: object) -> ControlRequest:
    """Decode one wire dict into a typed control request.

    Exactly as strict as :func:`~repro.service.queries.query_from_wire`:
    unknown kinds, missing required fields, and unexpected extra keys raise
    :class:`~repro.exceptions.WireFormatError`.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in CONTROL_KINDS:
        raise WireFormatError(
            f"unknown control kind {kind!r}; expected one of "
            f"{', '.join(sorted(CONTROL_KINDS))}"
        )
    cls = CONTROL_KINDS[kind]
    return cls(**fields_from_wire(cls, kind, payload))


def request_from_wire(payload: object) -> Query | ControlRequest:
    """Decode one wire dict into a query **or** a control request.

    The union decoder behind protocol v2: the ``kind`` discriminator routes
    to whichever plane owns it, and an unrecognised kind's error message
    lists every kind the server understands.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind in QUERY_KINDS:
        return query_from_wire(payload)
    if kind in CONTROL_KINDS:
        return control_from_wire(payload)
    raise WireFormatError(
        f"unknown request kind {kind!r}; expected one of "
        f"{', '.join(sorted({**QUERY_KINDS, **CONTROL_KINDS}))}"
    )
