"""Concurrent request execution: a worker pool over the service facade.

:class:`ParallelExecutor` runs batches of service requests over a thread
pool while keeping the sequential path's contract intact:

* **deterministic ordered output** — ``run`` returns exactly one
  :class:`~repro.service.results.QueryResult` per request, in request order,
  regardless of how many workers raced to produce them;
* **per-request error envelopes** — a request that cannot be decoded or
  answered becomes an error envelope in its slot; it never raises out of the
  pool and never affects its neighbours;
* **identical values** — backends are read-only after build and the engine
  layer is thread-safe, so for exact / path-consistent backends the *values*
  returned for a batch are bitwise identical for any worker count (latency
  fields and cache-hit flags naturally vary).  The one caveat is an
  approximate backend (SLING) serving a *mixed* workload: a ``single_pair``
  answered from its source's cached vector and one answered by Algorithm 3
  agree only within the accuracy target, and which path runs depends on
  whether another worker cached that vector first — so such values may vary
  across runs by accuracy-target order (never more);
* **batch-aware scheduling** — within one worker's chunk, textually
  identical read queries (same kind, dataset, backend, and arguments) are
  answered once and the envelope is shared by every duplicate.  Skewed
  workloads (top-k dashboards hammering hot sources) are where a batch
  scheduler earns its keep even on one core; on multi-core machines the
  chunks additionally run in parallel.

Locking hierarchy (acquired strictly top-down, so no cycles):

1. service lock — session open/close/list;
2. session lock — lazy engine/index builds;
3. engine lock — LRU cache and statistics (never held across backend work).

``run`` is for batch jobs (``repro batch --workers N``); :meth:`submit` is
the streaming interface behind the long-lived ``repro serve`` loop, which
needs one future per request to write responses in arrival order while up to
``workers`` requests execute behind the head of the line.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..exceptions import ParameterError, ReproError
from ..sling.parallel import even_chunks, resolve_worker_count
from .control import ControlRequest
from .queries import (
    AllPairsQuery,
    Query,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)
from .results import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    QueryResult,
)
from .service import SimRankService
from .wire import RequestEnvelope, decode_envelope

__all__ = ["ParallelExecutor"]

#: Chunks handed to the pool per worker; more than one so an unlucky chunk
#: full of slow (cold) requests does not leave the other workers idle.
CHUNKS_PER_WORKER = 4


def _dedupe_key(query: Query, backend: str | None) -> tuple | None:
    """A hashable identity for read queries that may share one envelope.

    Only queries whose answers depend on nothing but the built backend are
    deduplicated; anything unrecognised returns ``None`` and is executed
    individually.
    """
    if type(query) is TopKQuery:
        return ("top_k", query.dataset, backend, query.node, query.k)
    if type(query) is SinglePairQuery:
        # The engine canonicalises pairs and answers both orientations
        # bitwise-identically, so (u, v) and (v, u) may share one envelope.
        low, high = sorted((query.node_u, query.node_v))
        return ("single_pair", query.dataset, backend, low, high)
    if type(query) is SingleSourceQuery:
        return ("single_source", query.dataset, backend, query.node)
    if type(query) is AllPairsQuery:
        return ("all_pairs", query.dataset, backend)
    return None


class ParallelExecutor:
    """Execute service requests concurrently with ordered, enveloped output.

    Parameters
    ----------
    service:
        The (thread-safe) :class:`~repro.service.SimRankService` to execute
        against.  The executor never bypasses it: every request still gets
        the service's validation and error-envelope guarantees.
    workers:
        Worker-thread count; ``None`` or ``0`` means one per CPU.
    backend:
        Optional backend label forwarded to every ``execute`` call (the same
        meaning as ``SimRankService.execute(..., backend=...)``).

    The executor is itself thread-safe and reusable; the pool is created
    lazily and shut down by :meth:`close` (or the context manager).
    """

    def __init__(
        self,
        service: SimRankService,
        *,
        workers: int | None = None,
        backend: str | None = None,
        max_pending: int | None = None,
        degrade_pending: int | None = None,
    ) -> None:
        self._service = service
        self._workers = resolve_worker_count(workers)
        self._backend = backend
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False
        if max_pending is not None and max_pending < 1:
            raise ParameterError(
                f"max_pending must be a positive int, got {max_pending!r}"
            )
        if degrade_pending is not None and degrade_pending < 1:
            raise ParameterError(
                f"degrade_pending must be a positive int, got {degrade_pending!r}"
            )
        #: Load-shedding bound on streaming submissions: once this many
        #: requests are queued or executing, :meth:`submit` answers
        #: ``overloaded`` immediately instead of growing the queue.
        self._max_pending = max_pending
        #: Pressure threshold for graceful degradation: at or above this
        #: many pending requests, exact ``single_source`` queries are
        #: answered via the cascade path and stamped ``degraded: true``.
        self._degrade_pending = degrade_pending
        self._pending = 0
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        """Resolved worker-thread count."""
        return self._workers

    @property
    def service(self) -> SimRankService:
        """The service this executor runs requests against."""
        return self._service

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise ParameterError("executor is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="repro-query",
                )
            return self._pool

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight requests to finish."""
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Single-request execution (shared by every entry point)
    # ------------------------------------------------------------------ #
    def _execute_one(
        self,
        request: Query | ControlRequest | object,
        shared: dict[tuple, QueryResult] | None = None,
    ) -> QueryResult:
        """Answer one request — typed query or wire payload — as an envelope.

        ``shared`` is a chunk-local memo of completed read queries; it is
        only ever touched by the one worker thread that owns the chunk.
        A request that is already a :class:`QueryResult` (a pre-failed
        envelope from line decoding) passes through untouched; a
        :class:`~repro.service.control.ControlRequest` dispatches to the
        service's control plane (control operations are never deduplicated
        — ``close_dataset`` twice must close twice).
        """
        try:
            deadline = None
            if isinstance(request, RequestEnvelope):
                deadline = request.deadline
                request = request.request
            if isinstance(request, QueryResult):
                return request
            if not isinstance(request, (Query, ControlRequest)):
                # Decode wire payloads up front (rather than delegating to
                # execute_wire) so deduplication and a pinned backend apply
                # to the JSONL path — the only path the CLI uses — too.
                # The envelope decoder accepts v2 keys and control kinds.
                envelope = decode_envelope(request)
                if deadline is None:
                    deadline = envelope.deadline
                request = envelope.request
                if isinstance(request, QueryResult):
                    return request
            if deadline is not None and time.monotonic() >= deadline:
                # The budget ran out while this request sat in the queue:
                # computing the answer now would only waste a worker on a
                # response nobody is waiting for.
                return QueryResult.failure(
                    ERROR_DEADLINE_EXCEEDED,
                    "deadline expired before execution started",
                    kind=getattr(request, "kind", None),
                    dataset=getattr(request, "dataset", None),
                )
            if isinstance(request, ControlRequest):
                return self._service.execute_control(request)
            degrade = (
                self._degrade_pending is not None
                and self._pending >= self._degrade_pending
            )
            key = None if degrade else _dedupe_key(request, self._backend)
            if shared is not None and key is not None:
                result = shared.get(key)
                if result is None:
                    result = self._service.execute(request, backend=self._backend)
                    shared[key] = result
                return result
            if degrade:
                return self._service.execute(
                    request, backend=self._backend, degrade=True
                )
            # Only pass the degrade keyword when degrading: callers are
            # allowed to wrap ``execute`` with the narrower pre-overload
            # signature (the health-probe tests do), and the kwarg would
            # break them for no behavioural difference.
            return self._service.execute(request, backend=self._backend)
        except ReproError as exc:  # defensive: the service should not raise
            return QueryResult.failure(ERROR_BAD_REQUEST, str(exc))
        except Exception as exc:  # noqa: BLE001 - a worker must never die
            return QueryResult.failure(
                ERROR_INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    def _run_chunk(
        self, requests: Sequence[Query | ControlRequest | object], chunk: range
    ) -> list[QueryResult]:
        shared: dict[tuple, QueryResult] = {}
        return [self._execute_one(requests[index], shared) for index in chunk]

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run(self, requests: Sequence[Query | ControlRequest | object]) -> list[QueryResult]:
        """Answer a batch; result ``i`` always belongs to request ``i``.

        Requests may be typed :class:`~repro.service.queries.Query` objects
        or decoded wire payloads (dicts); malformed payloads yield
        ``bad_request`` envelopes in their slots.  The batch is split into
        contiguous chunks processed by the worker pool; chunk results are
        reassembled in order, so the output is deterministic for any worker
        count.
        """
        if self._closed:  # same contract as submit(), for any worker count
            raise ParameterError("executor is closed")
        requests = list(requests)
        if not requests:
            return []
        # One worker runs inline with a single batch-wide chunk: splitting
        # would only fragment the dedupe memo with no parallelism to gain.
        num_chunks = 1 if self._workers == 1 else self._workers * CHUNKS_PER_WORKER
        chunks = even_chunks(len(requests), num_chunks)
        if self._workers == 1 or len(chunks) == 1:
            results_per_chunk = [
                self._run_chunk(requests, chunk) for chunk in chunks
            ]
        else:
            pool = self._ensure_pool()
            results_per_chunk = list(
                pool.map(lambda chunk: self._run_chunk(requests, chunk), chunks)
            )
        return [result for chunk in results_per_chunk for result in chunk]

    def run_lines(self, lines: Iterable[str]) -> list[QueryResult]:
        """Answer a batch of JSONL request lines (blank lines are skipped).

        Invalid JSON becomes a ``bad_request`` envelope in the corresponding
        slot — the same guarantee ``repro batch`` gives line by line.
        """
        payloads: list[object] = []
        for line in lines:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payloads.append(json.loads(stripped))
            except json.JSONDecodeError as exc:
                payloads.append(
                    QueryResult.failure(ERROR_BAD_REQUEST, f"invalid JSON: {exc}")
                )
        return self.run(payloads)

    def run_stream(self, lines: Iterable[str], *, window: int = 1024):
        """Yield ordered results for JSONL lines, one window at a time.

        The streaming sibling of :meth:`run_lines` for unbounded inputs
        (``repro batch --workers N`` on a pipe): at most ``window`` requests
        and their envelopes are in memory at once, and results start flowing
        after the first window instead of after EOF.  Ordering and envelopes
        are identical to :meth:`run_lines`; deduplication applies within
        each window.
        """
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window}")
        batch: list[str] = []
        for line in lines:
            if not line.strip():
                continue
            batch.append(line)
            if len(batch) >= window:
                yield from self.run_lines(batch)
                batch.clear()
        if batch:
            yield from self.run_lines(batch)

    # ------------------------------------------------------------------ #
    # Streaming execution (the serve loop)
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Requests submitted via :meth:`submit` and not yet completed."""
        return self._pending

    def _release_slot(self, _future: "Future[QueryResult]") -> None:
        with self._pending_lock:
            self._pending -= 1

    @staticmethod
    def _is_exempt(request: object) -> bool:
        """Control requests that must never be shed: health probes (the
        router's liveness signal) and shutdown (a wedged-full server must
        still be stoppable)."""
        inner = request.request if isinstance(request, RequestEnvelope) else request
        return isinstance(inner, ControlRequest) and inner.kind in (
            "ping", "shutdown"
        )

    def submit(self, request: Query | ControlRequest | object) -> "Future[QueryResult]":
        """Schedule one request on the pool; the future never raises.

        The streaming interface: callers (``repro serve``,
        :class:`~repro.service.net.SocketServer`) keep a FIFO of futures and
        write each result as its turn comes, giving ordered responses with
        up to ``workers`` requests in flight.  ``request`` may also be a
        decoded :class:`~repro.service.wire.RequestEnvelope`, which carries
        the request's deadline into the pool.

        With ``max_pending`` set, a submission past the bound resolves
        immediately to an ``overloaded`` envelope — explicit load shedding
        instead of an unbounded queue.
        """
        pool = self._ensure_pool()
        tracked = (
            self._max_pending is not None or self._degrade_pending is not None
        )
        if not tracked or self._is_exempt(request):
            return pool.submit(self._execute_one, request)
        with self._pending_lock:
            if (
                self._max_pending is not None
                and self._pending >= self._max_pending
            ):
                shed = True
            else:
                shed = False
                self._pending += 1
        if shed:
            inner = (
                request.request
                if isinstance(request, RequestEnvelope)
                else request
            )
            failure = QueryResult.failure(
                ERROR_OVERLOADED,
                f"server at capacity ({self._max_pending} requests pending); "
                "back off and retry",
                kind=getattr(inner, "kind", None),
                dataset=getattr(inner, "dataset", None),
            )
            future: Future[QueryResult] = Future()
            future.set_result(failure)
            return future
        future = pool.submit(self._execute_one, request)
        future.add_done_callback(self._release_slot)
        return future

    def submit_line(self, line: str) -> "Future[QueryResult]":
        """Schedule one JSONL request line; undecodable lines resolve to
        ``bad_request`` envelopes."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            failure = QueryResult.failure(
                ERROR_BAD_REQUEST, f"invalid JSON: {exc}"
            )
            future: Future[QueryResult] = Future()
            future.set_result(failure)
            return future
        return self.submit(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(workers={self._workers}, "
            f"backend={self._backend!r}, "
            f"datasets={self._service.list_datasets()})"
        )
