"""The response envelope every service call returns.

A :class:`QueryResult` is the *only* thing that crosses the service boundary:
successful queries carry their value plus provenance (dataset, backend, the
planner's routing decision, latency, whether the engine's cache answered);
failed ones carry a structured :class:`QueryError` instead of an exception.
``value`` is always plain JSON-able Python (floats, lists, dicts) so the
envelope serialises to one JSONL line without further conversion.

Value shapes by kind:

=============== ==========================================================
``single_pair``   ``float``
``single_source`` ``list[float]`` (index = node id)
``top_k``         ``list[{"rank": int, "node": int, "score": float}]``
``all_pairs``     ``list[list[float]]`` (row = source node)
=============== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import WireFormatError

__all__ = [
    "ERROR_BAD_REQUEST",
    "ERROR_UNKNOWN_DATASET",
    "ERROR_NODE_OUT_OF_RANGE",
    "ERROR_INTERNAL",
    "ERROR_UNAVAILABLE",
    "ERROR_OVERLOADED",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_TIMEOUT",
    "RETRYABLE_ERROR_CODES",
    "QueryError",
    "QueryResult",
    "result_from_wire",
]

#: The request could not be decoded or failed field validation.
ERROR_BAD_REQUEST = "bad_request"
#: The request names a dataset that is neither open nor in the registry.
ERROR_UNKNOWN_DATASET = "unknown_dataset"
#: A node id falls outside the dataset's ``[0, n)`` range.
ERROR_NODE_OUT_OF_RANGE = "node_out_of_range"
#: The backend raised unexpectedly; the message carries the original error.
ERROR_INTERNAL = "internal_error"
#: The transport or a worker process died before answering; the request may
#: be retried once the server (or the router's replacement worker) is back.
ERROR_UNAVAILABLE = "unavailable"
#: The server shed the request because its bounded queue (or the router's
#: per-worker in-flight cap) was full.  Retry after backing off.
ERROR_OVERLOADED = "overloaded"
#: The request's ``deadline_ms`` budget expired before a worker could
#: (finish) computing it; the answer would have been dead on arrival.
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
#: The client-side read timeout elapsed with no response frame; emitted by
#: the client itself (the connection is re-established before reuse).
ERROR_TIMEOUT = "timeout"

#: Codes a client may safely retry: queries are idempotent, and ``mutate``
#: retries are deduplicated by ``mutation_id`` in the worker's WAL.
RETRYABLE_ERROR_CODES = frozenset(
    {ERROR_UNAVAILABLE, ERROR_OVERLOADED, ERROR_TIMEOUT}
)


@dataclass(frozen=True)
class QueryError:
    """Structured failure description carried by an error envelope."""

    code: str
    message: str
    #: Optional machine-readable context (e.g. ``{"line": 17}`` for a
    #: malformed line in a ``repro batch`` input file); omitted from the
    #: wire form when empty.
    detail: dict | None = None

    def to_wire(self) -> dict:
        """Plain-dict form for JSON output."""
        payload = {"code": self.code, "message": self.message}
        if self.detail is not None:
            payload["detail"] = self.detail
        return payload


@dataclass(frozen=True)
class QueryResult:
    """Uniform envelope for every service response (success or failure)."""

    ok: bool
    kind: str | None
    dataset: str | None
    value: object = None
    backend: str | None = None
    plan: dict | None = None
    seconds: float = 0.0
    cache_hit: bool | None = None
    #: Monotonic mutation version of the index that answered (``None`` for
    #: sessions whose graph has never been mutated — the static wire form is
    #: unchanged).  Lets a client assert an answer reflects at least the
    #: version a mutation ack reported.
    index_version: int | None = None
    #: ``True`` when overload shedding answered with the bounded/cascade
    #: path instead of the requested exact method; the value is still within
    #: the engine's certified accuracy, just computed the cheaper way.
    degraded: bool = False
    error: QueryError | None = None

    @classmethod
    def success(
        cls,
        *,
        kind: str,
        dataset: str,
        value: object,
        backend: str,
        plan: dict | None,
        seconds: float,
        cache_hit: bool | None,
        index_version: int | None = None,
        degraded: bool = False,
    ) -> "QueryResult":
        """A successful envelope; ``value`` must already be JSON-able.

        Built by populating ``__dict__`` directly instead of the generated
        ``__init__``: the frozen dataclass assigns fields one
        ``object.__setattr__`` at a time, which is the single largest cost on
        the service's warm-cache hot path (see
        ``benchmarks/bench_service_overhead.py``).
        """
        self = object.__new__(cls)
        object.__setattr__(self, "__dict__", {
            "ok": True,
            "kind": kind,
            "dataset": dataset,
            "value": value,
            "backend": backend,
            "plan": plan,
            "seconds": seconds,
            "cache_hit": cache_hit,
            "index_version": index_version,
            "degraded": degraded,
            "error": None,
        })
        return self

    @classmethod
    def failure(
        cls,
        code: str,
        message: str,
        *,
        kind: str | None = None,
        dataset: str | None = None,
        seconds: float = 0.0,
        detail: dict | None = None,
    ) -> "QueryResult":
        """An error envelope; ``kind``/``dataset`` are best-effort context."""
        return cls(
            ok=False,
            kind=kind,
            dataset=dataset,
            seconds=seconds,
            error=QueryError(code=code, message=message, detail=detail),
        )

    def with_error_detail(self, **detail: object) -> "QueryResult":
        """This envelope with ``detail`` merged into its error object.

        A no-op on successful envelopes — the batch runner calls it
        unconditionally to stamp input line numbers onto decode failures.
        """
        if self.ok or self.error is None or not detail:
            return self
        merged = {**(self.error.detail or {}), **detail}
        return QueryResult(
            ok=False,
            kind=self.kind,
            dataset=self.dataset,
            seconds=self.seconds,
            error=QueryError(
                code=self.error.code, message=self.error.message, detail=merged
            ),
        )

    def to_wire(self) -> dict:
        """One JSON-able dict — exactly one JSONL line of the wire protocol."""
        payload = {
            "ok": self.ok,
            "kind": self.kind,
            "dataset": self.dataset,
            "seconds": self.seconds,
        }
        if self.ok:
            payload["value"] = self.value
            payload["backend"] = self.backend
            payload["plan"] = self.plan
            payload["cache_hit"] = self.cache_hit
            if self.index_version is not None:
                payload["index_version"] = self.index_version
            if self.degraded:
                payload["degraded"] = True
        else:
            assert self.error is not None
            payload["error"] = self.error.to_wire()
        return payload


def result_from_wire(payload: object) -> QueryResult:
    """Decode one wire dict back into a :class:`QueryResult`.

    Used by wire-protocol clients (and the round-trip tests); raises
    :class:`~repro.exceptions.WireFormatError` on malformed payloads.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"result must be a JSON object, got {type(payload).__name__}"
        )
    if "ok" not in payload or not isinstance(payload["ok"], bool):
        raise WireFormatError("result payload must carry a boolean 'ok' field")
    common = {
        "kind": payload.get("kind"),
        "dataset": payload.get("dataset"),
        "seconds": float(payload.get("seconds", 0.0)),
    }
    if payload["ok"]:
        version = payload.get("index_version")
        return QueryResult(
            ok=True,
            value=payload.get("value"),
            backend=payload.get("backend"),
            plan=payload.get("plan"),
            cache_hit=payload.get("cache_hit"),
            index_version=int(version) if version is not None else None,
            degraded=bool(payload.get("degraded", False)),
            **common,
        )
    error = payload.get("error")
    if not isinstance(error, dict) or "code" not in error:
        raise WireFormatError("error envelope must carry an 'error' object with a code")
    detail = error.get("detail")
    return QueryResult(
        ok=False,
        error=QueryError(
            code=str(error["code"]),
            message=str(error.get("message", "")),
            detail=detail if isinstance(detail, dict) else None,
        ),
        **common,
    )
