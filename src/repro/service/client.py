"""`SimRankClient`: the typed client library for protocol v2.

One client surface, three transports:

* **in-process** — wraps a :class:`~repro.service.SimRankService` directly.
  Zero-copy of the service's guarantees, but requests still round-trip
  through the same envelope decode / frame encode / reassembly code the
  wire uses, so the transports cannot drift apart behaviourally;
* **subprocess** — speaks v2 JSONL to a ``repro serve`` child over
  stdin/stdout pipes: reads the opening ``hello`` frame, assigns a
  monotonically increasing ``id`` to every request, and verifies the echo;
* **socket** — the same JSONL conversation over TCP or a Unix-domain
  socket, against a ``repro serve --listen/--unix`` server or a
  ``repro router`` front end.

Typical use::

    from repro.service import SimRankClient

    with SimRankClient.in_process(scale=0.1) as client:
        scores = client.single_source("GrQc", 3, chunk_size=512)
        top = client.top_k("GrQc", 3, k=5)
        print(client.list_datasets(), client.stats()["totals"])

    with SimRankClient.connect(scale=0.1) as client:   # spawns repro serve
        print(client.hello()["protocol"])              # -> 2
        print(client.single_pair("GrQc", 1, 2))

    with SimRankClient(address="127.0.0.1:7077") as client:  # shared server
        print(client.top_k("GrQc", 3, k=5))

Value-returning helpers (``single_pair`` ... ``shutdown``) raise
:class:`ServiceError` on error envelopes; :meth:`SimRankClient.execute`
returns the raw :class:`~repro.service.results.QueryResult` for callers
that want to inspect envelopes themselves.  A transport whose server dies
*mid-request* never hangs and never raises a bare pipe error: the request
resolves to a structured ``unavailable`` error envelope and the dead child
process (if the client spawned one) is reaped.
"""

from __future__ import annotations

import json
import os
import random
import socket
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..exceptions import ParameterError, ReproError, WireFormatError
from .net.channel import Address, LineChannel, parse_address
from .control import (
    CloseDatasetRequest,
    ControlRequest,
    DescribeRequest,
    ListDatasetsRequest,
    MutateRequest,
    OpenDatasetRequest,
    PingRequest,
    ShutdownRequest,
    StatsRequest,
)
from .queries import (
    AllPairsQuery,
    Query,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)
from .results import (
    ERROR_TIMEOUT,
    ERROR_UNAVAILABLE,
    RETRYABLE_ERROR_CODES,
    QueryResult,
)
from .service import ServiceConfig, SimRankService
from .wire import (
    PROTOCOL_VERSION,
    decode_envelope,
    encode_frame,
    response_frames,
    result_from_frames,
)

__all__ = ["RetryPolicy", "ServiceError", "SimRankClient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry with exponential backoff and jitter.

    Retrying is safe because queries are idempotent and ``mutate`` requests
    carry a ``mutation_id`` the worker's WAL deduplicates — the client
    auto-generates one when a retry policy is active, so a retried mutate
    that actually landed the first time answers with the original ack.
    Only the codes in :attr:`retry_codes` are retried: ``unavailable``
    (worker died — the router restarts it), ``overloaded`` (shed — back
    off), and ``timeout`` (the client's own read timeout).
    """

    #: Total attempts, the first included; 1 disables retrying.
    max_attempts: int = 3
    #: First backoff, in seconds; doubles each retry.
    base_delay: float = 0.05
    #: Backoff ceiling, in seconds.
    max_delay: float = 2.0
    #: Uniform jitter fraction added to each delay (0.5 = up to +50%),
    #: de-synchronising retry storms from many clients.
    jitter: float = 0.5
    #: Error codes worth retrying.
    retry_codes: frozenset = RETRYABLE_ERROR_CODES
    #: Optional seed for reproducible jitter (the chaos harness pins one).
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        return base * (1.0 + self.jitter * self._rng.random())

    def should_retry(self, result: QueryResult, attempt: int) -> bool:
        """Whether ``result`` (attempt ``attempt``, 1-based) warrants another."""
        if result.ok or result.error is None:
            return False
        if attempt >= self.max_attempts:
            return False
        return result.error.code in self.retry_codes


class ServiceError(ReproError):
    """A value-returning client helper received an error envelope."""

    def __init__(self, result: QueryResult) -> None:
        error = result.error
        code = error.code if error else "unknown"
        message = error.message if error else "unknown error"
        super().__init__(f"[{code}] {message}")
        #: The full error envelope, for callers that need the detail.
        self.result = result
        self.code = code


class _InProcessTransport:
    """Round-trip requests through a wrapped service, via the wire codecs.

    The request payload is decoded with the same envelope decoder and the
    result is re-encoded into frames and reassembled with the same
    functions the serve loop and the subprocess transport use — so
    chunking, id echo, and error shaping are *proven* identical rather
    than merely similar.
    """

    def __init__(self, service: SimRankService, *, owns_service: bool) -> None:
        self._service = service
        #: Whether the client created the service (and so may tear it down
        #: on close) or merely wraps one the caller still owns.
        self._owns_service = owns_service
        self._shut_down = False
        # Snapshot hello at connect time, exactly like the subprocess
        # transport reading the serve loop's opening frame — hello is the
        # handshake, not a live status endpoint (that is ``describe``).
        self._hello = service.hello_payload()

    @property
    def service(self) -> SimRankService:
        return self._service

    @property
    def owns_service(self) -> bool:
        return self._owns_service

    def hello(self) -> dict:
        return self._hello

    def roundtrip(self, payload: dict) -> QueryResult:
        if self._shut_down:
            # Mirror the subprocess transport: a server that acknowledged
            # shutdown answers nothing further.
            raise ServiceError(
                QueryResult.failure("server_gone", "server has shut down")
            )
        envelope = decode_envelope(payload)
        result = self._service.execute_request(envelope.request)
        if result.ok and result.kind == "shutdown":
            # Mirror the serve loop: after an acknowledged shutdown the
            # sessions are gone and no further requests are served.
            self._shut_down = True
            self._service.close_all()
        frames = [
            json.loads(line)
            for line in response_frames(
                result, id=envelope.id, chunk_size=envelope.chunk_size
            )
        ]
        reassembled = result_from_frames(frames)
        _check_echo(frames, payload.get("id"))
        return reassembled

    @property
    def closed(self) -> bool:
        return self._shut_down

    def close(self) -> None:
        if self._owns_service:
            self._service.close_all()


class _TransportGone(Exception):
    """Internal: the server's stream ended where a frame was expected."""


def _spawn_serve(
    serve_args: Sequence[str], **popen_kwargs: object
) -> subprocess.Popen:
    """Spawn ``repro serve`` with this interpreter and the package's
    ``src`` directory on ``PYTHONPATH``, so clients work from a checkout
    without installation."""
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir, env["PYTHONPATH"]] if env.get("PYTHONPATH") else [src_dir]
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *serve_args],
        stderr=subprocess.DEVNULL,
        env=env,
        **popen_kwargs,
    )


def _died_envelope(payload: dict, message: str) -> QueryResult:
    """The structured ``unavailable`` envelope a dead transport answers
    with, echoing the request's kind/dataset where they were present."""
    kind = payload.get("kind")
    dataset = payload.get("dataset")
    return QueryResult.failure(
        ERROR_UNAVAILABLE,
        message,
        kind=kind if isinstance(kind, str) else None,
        dataset=dataset if isinstance(dataset, str) else None,
    )


class _SubprocessTransport:
    """Speak v2 JSONL to a ``repro serve`` child process.

    Requests are written one line at a time and responses read back in
    lockstep — the serve loop's ordered writer guarantees the next response
    line(s) belong to the request just sent.  A child that dies mid-request
    (crash, OOM kill, operator ``kill -9``) does not hang the caller or
    leak a zombie: the in-flight request resolves to an ``unavailable``
    error envelope, the corpse is reaped, and later requests fail fast
    with :class:`ServiceError`.
    """

    def __init__(self, serve_args: Sequence[str]) -> None:
        self._process = _spawn_serve(
            serve_args,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            encoding="utf-8",
        )
        self._lock = threading.Lock()
        self._shut_down = False
        try:
            self._hello = self._read_frame()
        except _TransportGone:
            self._reap()
            raise ServiceError(
                QueryResult.failure(
                    "server_gone", "repro serve closed its output stream"
                )
            ) from None
        if self._hello.get("frame") != "hello":
            raise WireFormatError(
                f"expected a hello frame from repro serve, got {self._hello!r}"
            )

    def _read_frame(self) -> dict:
        assert self._process.stdout is not None
        line = self._process.stdout.readline()
        if not line:
            raise _TransportGone()
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise WireFormatError(f"expected a frame object, got {payload!r}")
        return payload

    def hello(self) -> dict:
        return self._hello

    def roundtrip(self, payload: dict) -> QueryResult:
        with self._lock:
            if self._shut_down or self._process.poll() is not None:
                raise ServiceError(
                    QueryResult.failure("server_gone", "server has shut down")
                )
            assert self._process.stdin is not None
            try:
                self._process.stdin.write(encode_frame(payload) + "\n")
                self._process.stdin.flush()
                frames = [self._read_frame()]
                while frames[-1].get("frame") == "partial":
                    frames.append(self._read_frame())
            except (_TransportGone, OSError, ValueError):
                # ValueError covers "I/O operation on closed file" from a
                # pipe torn down under us; OSError covers BrokenPipeError.
                return self._died(payload)
            _check_echo(frames, payload.get("id"))
            result = result_from_frames(frames)
            if result.ok and result.kind == "shutdown":
                self._shut_down = True
                self._finish()
            return result

    def _died(self, payload: dict) -> QueryResult:
        self._shut_down = True
        self._reap()
        code = self._process.returncode
        return _died_envelope(
            payload,
            f"repro serve child died mid-request (exit code {code})",
        )

    def _reap(self) -> None:
        try:
            self._process.kill()
        except OSError:  # pragma: no cover - already gone
            pass
        self._finish()

    @property
    def closed(self) -> bool:
        return self._shut_down or self._process.poll() is not None

    def _finish(self) -> None:
        if self._process.stdin is not None:
            try:
                self._process.stdin.close()
            except (OSError, ValueError):  # pragma: no cover - pipe gone
                pass
        try:
            self._process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            self._process.kill()
            self._process.wait()

    def close(self) -> None:
        with self._lock:
            self._finish()


class _SocketTransport:
    """Speak v2 JSONL over TCP or a Unix-domain socket.

    The peer is any protocol-v2 socket endpoint — ``repro serve --listen``,
    ``repro serve --unix``, or a ``repro router`` — and the conversation is
    the subprocess transport's, byte for byte: read the opening ``hello``,
    then lockstep request/response lines.  When the transport itself
    spawned the server (``SimRankClient.connect_socket``) it owns the
    child: ``close`` tears it down and a death mid-request is reaped; a
    transport pointed at a shared server (``SimRankClient(address=...)``)
    owns only its connection.
    """

    def __init__(
        self,
        address: Address | str,
        *,
        connect_timeout: float = 30.0,
        timeout: float | None = None,
        process: subprocess.Popen | None = None,
        run_dir: str | None = None,
    ) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        if timeout is not None and timeout <= 0:
            raise ParameterError(f"timeout must be positive, got {timeout!r}")
        self._address = address
        self._process = process
        self._run_dir = run_dir
        self._connect_timeout = connect_timeout
        #: Per-request read timeout; ``None`` blocks forever (pre-PR-10
        #: behaviour).  On expiry the request resolves to a ``timeout``
        #: envelope and the channel is re-established — a late response on
        #: the old connection would desynchronise the lockstep protocol.
        self._timeout = timeout
        self._lock = threading.Lock()
        self._shut_down = False
        self._channel = self._open_channel()

    def _open_channel(self) -> LineChannel:
        address = self._address
        try:
            channel = LineChannel(
                address.connect(timeout=self._connect_timeout)
            )
        except OSError as exc:
            raise ServiceError(
                QueryResult.failure(
                    "server_gone", f"could not connect to {address}: {exc}"
                )
            ) from exc
        self._channel = channel
        # The hello read honours the connect budget: a server that accepts
        # but never greets must not block forever either.
        channel.settimeout(self._connect_timeout)
        try:
            self._hello = self._read_frame()
        except socket.timeout:
            channel.close()
            raise ServiceError(
                QueryResult.failure(
                    ERROR_TIMEOUT,
                    f"{address} accepted but sent no hello within "
                    f"{self._connect_timeout:.0f}s",
                )
            ) from None
        except (_TransportGone, OSError):
            channel.close()
            raise ServiceError(
                QueryResult.failure(
                    "server_gone",
                    f"{address} closed the connection before hello",
                )
            ) from None
        if self._hello.get("frame") != "hello":
            raise WireFormatError(
                f"expected a hello frame from {address}, got {self._hello!r}"
            )
        channel.settimeout(self._timeout)
        return channel

    @property
    def owns_service(self) -> bool:
        """Only a transport that spawned the server may shut it down on
        ``close`` — a connection to a shared server must not."""
        return self._process is not None

    @property
    def address(self) -> str:
        """The server endpoint, as a string other clients can connect to."""
        return str(self._address)

    def _read_frame(self) -> dict:
        line = self._channel.read_line()
        if line is None:
            raise _TransportGone()
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise WireFormatError(f"expected a frame object, got {payload!r}")
        return payload

    def hello(self) -> dict:
        return self._hello

    def roundtrip(self, payload: dict) -> QueryResult:
        with self._lock:
            if self._shut_down:
                raise ServiceError(
                    QueryResult.failure("server_gone", "server has shut down")
                )
            try:
                self._channel.send_line(encode_frame(payload))
                frames = [self._read_frame()]
                while frames[-1].get("frame") == "partial":
                    frames.append(self._read_frame())
            except socket.timeout:
                # No response within the read timeout.  The lockstep channel
                # is now ambiguous (a late response could still arrive), so
                # it is torn down and re-established before the next request;
                # the caller gets a structured ``timeout`` envelope it may
                # retry — never an indefinite hang.
                self._channel.close()
                try:
                    self._open_channel()
                except (ServiceError, WireFormatError):
                    self._shut_down = True
                    self._teardown()
                kind = payload.get("kind")
                dataset = payload.get("dataset")
                return QueryResult.failure(
                    ERROR_TIMEOUT,
                    f"no response from {self._address} within "
                    f"{self._timeout}s",
                    kind=kind if isinstance(kind, str) else None,
                    dataset=dataset if isinstance(dataset, str) else None,
                )
            except (_TransportGone, OSError):
                self._shut_down = True
                self._teardown()
                return _died_envelope(
                    payload,
                    f"the server at {self._address} went away mid-request",
                )
            _check_echo(frames, payload.get("id"))
            result = result_from_frames(frames)
            if result.ok and result.kind == "shutdown":
                self._shut_down = True
                self._teardown()
            return result

    @property
    def closed(self) -> bool:
        return self._shut_down

    def reconnect(self) -> bool:
        """Try to re-establish a torn-down connection to a *shared* server.

        ``False`` when this transport owns a spawned child (its death is
        final — there is nothing to reconnect to) or the endpoint is still
        unreachable; ``True`` restores normal service.
        """
        with self._lock:
            if not self._shut_down:
                return True
            if self._process is not None:
                return False
            try:
                self._open_channel()
            except (ServiceError, WireFormatError):
                return False
            self._shut_down = False
            return True

    def _teardown(self) -> None:
        self._channel.close()
        if self._process is not None:
            try:
                self._process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait()
        if self._run_dir is not None:
            try:
                Path(self._address.path).unlink()
            except OSError:
                pass
            try:
                Path(self._run_dir).rmdir()
            except OSError:
                pass
            self._run_dir = None

    def close(self) -> None:
        with self._lock:
            # Closed means closed: later roundtrips must fail fast with the
            # same ServiceError the other transports raise, not return a
            # went-away-mid-request envelope from the dead channel.
            self._shut_down = True
            if self._process is not None and self._process.poll() is None:
                self._process.kill()
            self._teardown()


def _check_echo(frames: Sequence[dict], request_id: object) -> None:
    for frame in frames:
        if frame.get("id") != request_id:
            raise WireFormatError(
                f"response frame echoes id {frame.get('id')!r} "
                f"for request id {request_id!r}"
            )


class SimRankClient:
    """Typed protocol-v2 client: queries and control over either transport.

    Construct via :meth:`in_process` (wrap a service in this interpreter)
    or :meth:`connect` (spawn and drive a ``repro serve`` subprocess); both
    speak the same envelopes, so code written against one runs unchanged
    against the other.  Instances are context managers; :meth:`close`
    shuts the transport down (and, for :meth:`connect`, sends ``shutdown``
    to the child first so it exits cleanly).
    """

    def __init__(
        self,
        transport: "_InProcessTransport | _SubprocessTransport | _SocketTransport | None" = None,
        *,
        address: Address | str | None = None,
        connect_timeout: float = 30.0,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        deadline_ms: float | None = None,
    ) -> None:
        if (transport is None) == (address is None):
            raise ParameterError(
                "pass exactly one of a transport or address="
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ParameterError(
                f"deadline_ms must be positive, got {deadline_ms!r}"
            )
        if transport is None:
            # ``SimRankClient(address="host:port")`` — attach to a shared
            # socket server (or router); close() leaves the server running.
            transport = _SocketTransport(
                address, connect_timeout=connect_timeout, timeout=timeout
            )
        self._transport = transport
        #: Retry policy for retryable error envelopes; ``None`` disables.
        self._retry = retry
        #: Default end-to-end budget stamped on every request envelope as
        #: ``deadline_ms``; a per-call value overrides it.
        self._deadline_ms = deadline_ms
        self._next_id = 0
        self._id_lock = threading.Lock()

    @property
    def address(self) -> str | None:
        """The server endpoint for a socket transport (a string another
        client can pass as ``address=``); ``None`` for the in-process and
        subprocess transports, which are not shareable."""
        return getattr(self._transport, "address", None)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def in_process(
        cls,
        service: SimRankService | None = None,
        *,
        config: ServiceConfig | None = None,
        **config_kwargs: object,
    ) -> "SimRankClient":
        """A client over an in-process service.

        Pass an existing ``service``, a full ``config``, or
        :class:`~repro.service.ServiceConfig` fields as keyword arguments
        (``scale=0.1, backend="sling"``).  A caller-supplied service stays
        the caller's: :meth:`close` leaves its sessions untouched (only an
        explicit :meth:`shutdown` tears them down); a service the client
        creates here is torn down with the client.
        """
        owns_service = service is None
        if service is None:
            service = SimRankService(config or ServiceConfig(**config_kwargs))
        return cls(_InProcessTransport(service, owns_service=owns_service))

    @classmethod
    def connect(
        cls,
        *,
        scale: float = 1.0,
        epsilon: float = 0.05,
        seed: int = 0,
        backend: str = "auto",
        workers: int = 1,
        mc_walks: int = 200,
        extra_args: Sequence[str] = (),
    ) -> "SimRankClient":
        """Spawn ``repro serve`` as a child process and connect to it."""
        serve_args = cls._serve_args(
            scale=scale, epsilon=epsilon, seed=seed, backend=backend,
            workers=workers, mc_walks=mc_walks, extra_args=extra_args,
        )
        return cls(_SubprocessTransport(serve_args))

    @classmethod
    def connect_socket(
        cls,
        *,
        scale: float = 1.0,
        epsilon: float = 0.05,
        seed: int = 0,
        backend: str = "auto",
        workers: int = 1,
        mc_walks: int = 200,
        extra_args: Sequence[str] = (),
        spawn_timeout: float = 120.0,
    ) -> "SimRankClient":
        """Spawn ``repro serve --unix`` on a private socket and connect.

        The subprocess twin for the socket transport: same options, same
        ownership (``close`` shuts the child down), but the conversation
        crosses a real socket — which is what the transport-parity tests
        lean on.  To attach to an already-running server instead, use
        ``SimRankClient(address=...)``.
        """
        run_dir = tempfile.mkdtemp(prefix="repro-socket-")
        socket_path = os.path.join(run_dir, "serve.sock")
        serve_args = cls._serve_args(
            scale=scale, epsilon=epsilon, seed=seed, backend=backend,
            workers=workers, mc_walks=mc_walks,
            extra_args=("--unix", socket_path, *extra_args),
        )
        process = _spawn_serve(
            serve_args, stdin=subprocess.DEVNULL, stdout=subprocess.DEVNULL
        )
        address = Address(family="unix", path=socket_path)
        deadline = time.monotonic() + spawn_timeout
        while True:
            if process.poll() is not None:
                raise ServiceError(
                    QueryResult.failure(
                        "server_gone",
                        "repro serve exited with code "
                        f"{process.returncode} before listening",
                    )
                )
            try:
                probe = address.connect(timeout=1.0)
            except OSError:
                if time.monotonic() > deadline:
                    process.kill()
                    process.wait()
                    raise ServiceError(
                        QueryResult.failure(
                            "server_gone",
                            f"repro serve did not listen on {address} within "
                            f"{spawn_timeout:.0f}s",
                        )
                    ) from None
                time.sleep(0.05)
                continue
            probe.close()
            break
        return cls(
            _SocketTransport(address, process=process, run_dir=run_dir)
        )

    @staticmethod
    def _serve_args(
        *,
        scale: float,
        epsilon: float,
        seed: int,
        backend: str,
        workers: int,
        mc_walks: int,
        extra_args: Sequence[str],
    ) -> list[str]:
        return [
            "--scale", str(scale),
            "--epsilon", str(epsilon),
            "--seed", str(seed),
            "--backend", backend,
            "--workers", str(workers),
            "--mc-walks", str(mc_walks),
            *extra_args,
        ]

    # ------------------------------------------------------------------ #
    # Envelope-level surface
    # ------------------------------------------------------------------ #
    def hello(self) -> dict:
        """The server's hello frame: protocol version, backends, datasets."""
        return self._transport.hello()

    @property
    def protocol_version(self) -> int:
        """The protocol version this client speaks."""
        return PROTOCOL_VERSION

    @property
    def closed(self) -> bool:
        """Whether the transport has been shut down."""
        return self._transport.closed

    def execute(
        self,
        request: Query | ControlRequest,
        *,
        chunk_size: int | None = None,
        deadline_ms: float | None = None,
    ) -> QueryResult:
        """Answer one typed request; returns the full result envelope.

        ``chunk_size`` asks the server to stream a large ``single_source``
        / ``all_pairs`` value as bounded frames; the client reassembles
        them, so the returned envelope's ``value`` is always complete.

        ``deadline_ms`` (or the client-level default) stamps an end-to-end
        budget on the envelope; hops along the way decrement it and shed
        expired work with ``deadline_exceeded`` envelopes.  With a
        :class:`RetryPolicy` configured, retryable error envelopes
        (``unavailable`` / ``overloaded`` / ``timeout``) are retried with
        exponential backoff — ``mutate`` only when it carries a
        ``mutation_id``, which keeps retries idempotent.
        """
        budget_ms = deadline_ms if deadline_ms is not None else self._deadline_ms
        started = time.monotonic() if budget_ms is not None else None
        retry = self._retry
        if (
            retry is not None
            and isinstance(request, MutateRequest)
            and request.mutation_id is None
        ):
            # A retried mutate without an idempotency token could apply
            # twice; never retry those.
            retry = None
        attempt = 0
        while True:
            attempt += 1
            with self._id_lock:
                request_id = self._next_id
                self._next_id += 1
            payload: dict = {"v": PROTOCOL_VERSION, "id": request_id}
            if chunk_size is not None:
                payload["chunk_size"] = chunk_size
            if budget_ms is not None:
                remaining = budget_ms - (time.monotonic() - started) * 1000.0
                if remaining <= 0:
                    return QueryResult.failure(
                        "deadline_exceeded",
                        f"client-side deadline of {budget_ms:g}ms expired",
                        kind=request.kind,
                        dataset=getattr(request, "dataset", None),
                    )
                payload["deadline_ms"] = remaining
            payload.update(request.to_wire())
            result = self._transport.roundtrip(payload)
            if retry is None or not retry.should_retry(result, attempt):
                return result
            delay = retry.delay(attempt)
            if budget_ms is not None:
                remaining = budget_ms - (time.monotonic() - started) * 1000.0
                if remaining <= delay * 1000.0:
                    return result  # no budget left for another attempt
            time.sleep(delay)
            if self._transport.closed:
                # The connection itself died (not just one request): try to
                # re-establish it — the router (or a restarted worker) may be
                # listening again — else surface the last envelope.
                reconnect = getattr(self._transport, "reconnect", None)
                if reconnect is None or not reconnect():
                    return result

    def _value(
        self,
        request: Query | ControlRequest,
        *,
        chunk_size: int | None = None,
    ) -> object:
        result = self.execute(request, chunk_size=chunk_size)
        if not result.ok:
            raise ServiceError(result)
        return result.value

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def single_pair(self, dataset: str, node_u: int, node_v: int) -> float:
        """SimRank of one pair."""
        return self._value(SinglePairQuery(dataset, node_u, node_v))

    def single_source(
        self, dataset: str, node: int, *, chunk_size: int | None = None
    ) -> list:
        """SimRank from ``node`` to every node (optionally streamed)."""
        return self._value(
            SingleSourceQuery(dataset, node), chunk_size=chunk_size
        )

    def top_k(self, dataset: str, node: int, k: int) -> list:
        """The ``k`` nodes most similar to ``node``, ranked."""
        return self._value(TopKQuery(dataset, node=node, k=k))

    def all_pairs(self, dataset: str, *, chunk_size: int | None = None) -> list:
        """The full score matrix (optionally streamed row-wise)."""
        return self._value(AllPairsQuery(dataset), chunk_size=chunk_size)

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        """Liveness probe; ``{"pong": true, "protocol": 2}``."""
        return self._value(PingRequest())

    def open_dataset(self, dataset: str) -> dict:
        """Open a registry dataset session eagerly; returns its shape."""
        return self._value(OpenDatasetRequest(dataset))

    def close_dataset(self, dataset: str) -> dict:
        """Close one dataset session; ``{"closed": bool, ...}``."""
        return self._value(CloseDatasetRequest(dataset))

    def list_datasets(self) -> list:
        """Names of the open sessions, in opening order."""
        value = self._value(ListDatasetsRequest())
        return value["datasets"]

    def stats(self) -> dict:
        """The aggregate statistics snapshot."""
        return self._value(StatsRequest())

    def describe(self, dataset: str | None = None) -> dict:
        """Describe the service, or one open dataset session."""
        return self._value(DescribeRequest(dataset=dataset))

    def mutate(
        self,
        dataset: str,
        *,
        add: Sequence[tuple[int, int]] = (),
        remove: Sequence[tuple[int, int]] = (),
        refreeze: bool = False,
        mutation_id: str | None = None,
    ) -> dict:
        """Apply an edge delta to ``dataset``'s live index; returns the ack
        (``index_version``, ``epsilon_stale``, affected-set sizes, ...).

        ``refreeze=True`` compacts all outstanding deltas before the ack,
        restoring bitwise rebuild-parity answers (``epsilon_stale`` 0.0).

        ``mutation_id`` is the idempotency token a WAL-backed worker
        deduplicates retries by; with a :class:`RetryPolicy` configured one
        is auto-generated, so a retried mutate can never apply twice.
        """
        if mutation_id is None and self._retry is not None:
            mutation_id = uuid.uuid4().hex
        return self._value(
            MutateRequest(
                dataset=dataset,
                add=tuple((int(u), int(v)) for u, v in add),
                remove=tuple((int(u), int(v)) for u, v in remove),
                refreeze=refreeze,
                mutation_id=mutation_id,
            )
        )

    def shutdown(self) -> dict:
        """Ask the server to drain and stop; the transport closes with it."""
        return self._value(ShutdownRequest())

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the transport down (sending ``shutdown`` first if alive).

        A borrowed in-process service (``in_process(service=...)``) is not
        shut down — its sessions belong to the caller; only transports the
        client owns (a spawned ``repro serve`` child, a service built by
        :meth:`in_process`) get the full teardown.
        """
        owns = getattr(self._transport, "owns_service", True)
        if owns and not self._transport.closed:
            try:
                self.shutdown()
            except (ReproError, OSError):  # already going away; finish locally
                pass
        self._transport.close()

    def __enter__(self) -> "SimRankClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        transport = type(self._transport).__name__.strip("_")
        return f"SimRankClient(transport={transport}, closed={self.closed})"
