"""Per-dataset mutation write-ahead log: durability for ``mutate`` acks.

PR 9 made graphs mutable, but the deltas lived only in worker memory: a
crashed worker came back with the pre-mutation graph and the router's
failover silently replayed its *open datasets*, resurrecting stale answers.
This module closes that hole.  Every acknowledged ``mutate`` is recorded in
an append-only, checksummed, fsync'd log *before* the ack leaves the
worker, so after a crash the worker (or its replacement) replays
checkpoint + tail and serves answers that match the pre-crash dynamic
index within the certified ``eps_stale`` bound.

On-disk layout, per dataset under ``wal_dir``::

    <dataset>.wal        append-only record log (see framing below)
    <dataset>.ckpt.json  net-delta checkpoint written at refreeze time

Record framing — one record per acknowledged mutation::

    4 bytes  big-endian payload length N
    4 bytes  big-endian CRC32 of the payload bytes
    N bytes  UTF-8 JSON payload

The payload carries the mutation delta, its optional client-supplied
``mutation_id`` (the idempotency token that makes retries safe), and the
ack that was returned — so a deduplicated retry can answer with the
*original* ack.  Appends are flushed and ``os.fsync``'d before
:meth:`MutationWAL.append` returns: an ack on the wire implies the record
is on disk (fsync-on-ack).

Recovery is **stop-at-first-corruption**: a torn tail record (crash during
append) or a checksum mismatch ends replay at the last intact record; the
corrupt suffix is truncated away on open so the log is append-clean again,
and the number of discarded bytes is reported in :meth:`MutationWAL.stats`.

``refreeze`` checkpointing keeps the log bounded: the accumulated records
collapse into one *net* edge delta (an add cancels a pending remove of the
same edge and vice versa) written to ``<dataset>.ckpt.json`` via a tmp
file + ``os.replace`` (atomic — a crash mid-checkpoint leaves the previous
checkpoint and full log intact), after which the log is truncated.
Because PR 9's re-freeze rebuilds a packed generation with bitwise rebuild
parity, replaying the checkpoint as a single ``refreeze=True`` mutation
reproduces the compacted store exactly.

Fault injection: set ``REPRO_WAL_FAIL_AFTER_BYTES=<n>`` to make appends
fail with ``ENOSPC`` once the log would exceed ``n`` bytes — the
disk-full case the chaos harness (:mod:`repro.evaluation.faults`) drives.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import zlib
from pathlib import Path

__all__ = ["FAIL_AFTER_ENV", "MutationWAL", "WalCorruption"]

#: ``(length, crc32)`` header prepended to every record payload.
_HEADER = struct.Struct(">II")

#: Environment knob: appends fail with ``ENOSPC`` once the log file would
#: grow past this many bytes.  Read per-append so a harness can arm and
#: disarm it around a single mutation.
FAIL_AFTER_ENV = "REPRO_WAL_FAIL_AFTER_BYTES"
_FAIL_AFTER_ENV = FAIL_AFTER_ENV


class WalCorruption(Exception):
    """Raised internally when a record fails its checksum; recovery treats
    it like a torn tail (stop, truncate) rather than propagating."""


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory so renames/creates are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _edge_key(edge) -> tuple[int, int]:
    u, v = edge
    return (int(u), int(v))


class MutationWAL:
    """The write-ahead log for one dataset session.

    Not thread-safe on its own: callers (``apply_mutation``) already hold
    the session lock for the apply, and the WAL piggybacks on it.
    """

    def __init__(self, directory: str | Path, dataset: str) -> None:
        self.directory = Path(directory)
        self.dataset = dataset
        safe = dataset.replace("/", "_")
        self.log_path = self.directory / f"{safe}.wal"
        self.checkpoint_path = self.directory / f"{safe}.ckpt.json"
        self.directory.mkdir(parents=True, exist_ok=True)

        #: Intact tail records (mutations since the last checkpoint), in
        #: append order — exactly what recovery replays after the checkpoint.
        self.records: list[dict] = []
        #: mutation_id -> recorded ack, for tail records that carried one.
        self._acks: dict[str, dict] = {}
        #: Every mutation_id this log has ever acknowledged (checkpoint ids
        #: included) — the dedup set.
        self._known_ids: set[str] = set()
        #: Bytes discarded from the log tail on open (torn/corrupt suffix).
        self.truncated_bytes = 0

        self._checkpoint: dict | None = self._load_checkpoint()
        if self._checkpoint is not None:
            self._known_ids.update(self._checkpoint.get("mutation_ids", ()))
        self._load_log()
        self._file = open(self.log_path, "ab")

    # ----------------------------------------------------------------- #
    # Loading
    # ----------------------------------------------------------------- #
    def _load_checkpoint(self) -> dict | None:
        if not self.checkpoint_path.exists():
            return None
        try:
            payload = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A checkpoint is written atomically (tmp + os.replace), so an
            # unreadable one means outside interference; ignoring it would
            # silently lose acked mutations — fail loudly instead.
            raise WalCorruption(
                f"checkpoint {self.checkpoint_path} is unreadable"
            ) from None
        if not isinstance(payload, dict):
            raise WalCorruption(f"checkpoint {self.checkpoint_path} is malformed")
        return payload

    def _load_log(self) -> None:
        """Read intact records; truncate any torn/corrupt suffix in place."""
        if not self.log_path.exists():
            self.log_path.touch()
            return
        data = self.log_path.read_bytes()
        offset = 0
        good = 0
        while offset + _HEADER.size <= len(data):
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break  # torn tail: header promises more bytes than exist
            payload = data[start:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break  # checksum mismatch: stop at last intact record
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            if not isinstance(record, dict):
                break
            self._admit(record)
            offset = end
            good = end
        self.truncated_bytes = len(data) - good
        if self.truncated_bytes:
            with open(self.log_path, "r+b") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())

    def _admit(self, record: dict) -> None:
        self.records.append(record)
        mutation_id = record.get("mutation_id")
        if isinstance(mutation_id, str):
            self._known_ids.add(mutation_id)
            ack = record.get("ack")
            if isinstance(ack, dict):
                self._acks[mutation_id] = ack

    # ----------------------------------------------------------------- #
    # Dedup
    # ----------------------------------------------------------------- #
    def known(self, mutation_id: str) -> bool:
        """Whether this id was ever acknowledged (tail or checkpoint)."""
        return mutation_id in self._known_ids

    def recorded_ack(self, mutation_id: str) -> dict | None:
        """The originally recorded ack, when the record still has it.

        Ids that were folded into a checkpoint keep their dedup guarantee
        (:meth:`known`) but no longer carry the full ack; the caller
        synthesises a minimal one from live session state.
        """
        return self._acks.get(mutation_id)

    # ----------------------------------------------------------------- #
    # Appending
    # ----------------------------------------------------------------- #
    def append(
        self,
        *,
        add,
        remove,
        refreeze: bool,
        mutation_id: str | None,
        ack: dict,
    ) -> None:
        """Durably record one acknowledged mutation (fsync-on-ack).

        Raises ``OSError`` when the write cannot be made durable — the
        caller rolls the in-memory apply back and answers a typed error,
        so the live index never runs ahead of the log.
        """
        record = {
            "add": [list(_edge_key(edge)) for edge in add],
            "remove": [list(_edge_key(edge)) for edge in remove],
            "refreeze": bool(refreeze),
        }
        if mutation_id is not None:
            record["mutation_id"] = mutation_id
            record["ack"] = ack
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        framed = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        framed += payload

        limit = os.environ.get(_FAIL_AFTER_ENV)
        if limit is not None:
            try:
                budget = int(limit)
            except ValueError:
                budget = 0
            if self._file.tell() + len(framed) > budget:
                raise OSError(errno.ENOSPC, "injected disk-full on WAL append")

        self._file.write(framed)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._admit(record)

    # ----------------------------------------------------------------- #
    # Checkpointing
    # ----------------------------------------------------------------- #
    def net_delta(self) -> tuple[list[list[int]], list[list[int]]]:
        """Collapse checkpoint + tail into one ``(added, removed)`` delta.

        An add cancels a pending remove of the same edge and vice versa,
        so replaying the result as a single mutation lands on the same
        graph as replaying every record in order.
        """
        added: set[tuple[int, int]] = set()
        removed: set[tuple[int, int]] = set()
        if self._checkpoint is not None:
            added.update(_edge_key(e) for e in self._checkpoint.get("added", ()))
            removed.update(_edge_key(e) for e in self._checkpoint.get("removed", ()))
        for record in self.records:
            for edge in record.get("add", ()):
                key = _edge_key(edge)
                if key in removed:
                    removed.discard(key)
                else:
                    added.add(key)
            for edge in record.get("remove", ()):
                key = _edge_key(edge)
                if key in added:
                    added.discard(key)
                else:
                    removed.add(key)
        return (
            [list(edge) for edge in sorted(added)],
            [list(edge) for edge in sorted(removed)],
        )

    def checkpoint(self, *, version: int) -> None:
        """Fold the log into ``<dataset>.ckpt.json`` and truncate it.

        Called after a successful re-freeze: the compacted generation is
        fully described by the net delta, so recovery replays it as one
        ``refreeze=True`` mutation (bitwise rebuild parity makes that
        reproduce the frozen store exactly) and the tail starts empty.
        """
        added, removed = self.net_delta()
        payload = {
            "version": int(version),
            "added": added,
            "removed": removed,
            "mutation_ids": sorted(self._known_ids),
        }
        tmp = self.checkpoint_path.with_suffix(".ckpt.json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.checkpoint_path)
        _fsync_dir(self.directory)

        self._file.close()
        self._file = open(self.log_path, "wb")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._checkpoint = payload
        self.records = []
        self._acks = {}

    # ----------------------------------------------------------------- #
    # Recovery / introspection
    # ----------------------------------------------------------------- #
    @property
    def checkpoint_payload(self) -> dict | None:
        """The loaded checkpoint (``None`` when never checkpointed)."""
        return self._checkpoint

    def has_history(self) -> bool:
        """Whether there is anything to recover (checkpoint or tail)."""
        return self._checkpoint is not None or bool(self.records)

    def stats(self) -> dict:
        """JSON-able health snapshot for the ``stats`` control request."""
        return {
            "records": len(self.records),
            "bytes": self.log_path.stat().st_size if self.log_path.exists() else 0,
            "truncated_bytes": self.truncated_bytes,
            "checkpoint_version": (
                self._checkpoint.get("version") if self._checkpoint else None
            ),
            "known_mutation_ids": len(self._known_ids),
        }

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass

    def __enter__(self) -> "MutationWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
