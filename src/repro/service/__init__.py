"""Typed request/response service API over the query engine (protocol v2).

This package is the serving boundary of the repository — the layer a CLI,
batch runner, or future async/HTTP front end talks to.  The layering is
strictly::

    service   (typed requests -> result envelopes, named dataset sessions)
       |
    engine    (QueryEngine: batching, LRU cache, statistics; planner routing)
       |
    backend   (SLING index, disk-backed SLING, baselines)

* :mod:`repro.service.queries` — frozen, validated **data-plane** request
  dataclasses (:class:`SinglePairQuery`, :class:`SingleSourceQuery`,
  :class:`TopKQuery`, :class:`AllPairsQuery`);
* :mod:`repro.service.control` — frozen **control-plane** request
  dataclasses (:class:`PingRequest`, :class:`OpenDatasetRequest`,
  :class:`CloseDatasetRequest`, :class:`ListDatasetsRequest`,
  :class:`StatsRequest`, :class:`DescribeRequest`, :class:`MutateRequest`,
  :class:`ShutdownRequest`) — admin operations that ride the same wire as
  queries and come back as the same envelopes;
* :mod:`repro.service.mutations` — the mutation control-plane:
  :func:`apply_mutation` applies a ``mutate`` request's edge delta to a
  live session in place (incremental index repair, version-scoped engine
  cache invalidation, optional re-freeze);
* :mod:`repro.service.results` — the :class:`QueryResult` envelope (value +
  dataset + backend + plan + latency + cache-hit flag, or a structured
  :class:`QueryError` — bad requests never raise across the boundary);
* :mod:`repro.service.service` — :class:`SimRankService`, which manages named
  dataset sessions (lazy open via the planner and memory budget, per-backend
  engines, close / list / describe / aggregate statistics) and dispatches
  both planes through :meth:`~repro.service.service.SimRankService.execute_wire`;
* :mod:`repro.service.wire` — the JSONL wire protocol v2: versioned request
  envelopes (``v`` / client-assigned ``id`` echoed on every response /
  ``chunk_size``), the ``hello`` handshake frame, and chunked
  ``partial``/``done`` result streaming.  Bare v1 query lines decode as v2
  with ``id: null``;
* :mod:`repro.service.client` — :class:`SimRankClient`, the typed client
  library with in-process, ``repro serve``-subprocess, and socket
  transports;
* :mod:`repro.service.parallel` — :class:`ParallelExecutor`, the worker pool
  behind ``repro batch --workers N`` and the ``repro serve`` loop: chunked
  concurrent execution with deterministic ordered output, per-request error
  envelopes, and per-chunk deduplication of identical read queries;
* :mod:`repro.service.net` — the socket layer: :class:`SocketServer`
  (``repro serve --listen/--unix``), and :class:`WorkerPool` +
  :class:`Router` (``repro router``) for multi-process sharded serving
  with health-checked failover.
"""

from .client import RetryPolicy, ServiceError, SimRankClient
from .net import (
    DEFAULT_MAX_LINE_BYTES,
    Address,
    HashRing,
    LineChannel,
    OversizedLineError,
    Router,
    SocketServer,
    WorkerPool,
    parse_address,
)
from .control import (
    CONTROL_KINDS,
    CloseDatasetRequest,
    ControlRequest,
    DescribeRequest,
    ListDatasetsRequest,
    MutateRequest,
    OpenDatasetRequest,
    PingRequest,
    ShutdownRequest,
    StatsRequest,
    control_from_wire,
    request_from_wire,
)
from .mutations import apply_mutation, mutate_session, recover_session
from .parallel import ParallelExecutor
from .queries import (
    QUERY_KINDS,
    AllPairsQuery,
    Query,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    query_from_wire,
)
from .results import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ERROR_UNAVAILABLE,
    ERROR_UNKNOWN_DATASET,
    RETRYABLE_ERROR_CODES,
    QueryError,
    QueryResult,
    result_from_wire,
)
from .service import DatasetSession, ServiceConfig, SimRankService
from .wal import FAIL_AFTER_ENV, MutationWAL
from .wire import (
    PROTOCOL_VERSION,
    RequestEnvelope,
    decode_envelope,
    decode_envelope_line,
    decode_request,
    decode_result,
    encode_frame,
    encode_request,
    encode_response,
    encode_result,
    response_frames,
    result_from_frames,
)

__all__ = [
    "Query",
    "SinglePairQuery",
    "SingleSourceQuery",
    "TopKQuery",
    "AllPairsQuery",
    "QUERY_KINDS",
    "query_from_wire",
    "ControlRequest",
    "PingRequest",
    "OpenDatasetRequest",
    "CloseDatasetRequest",
    "ListDatasetsRequest",
    "StatsRequest",
    "DescribeRequest",
    "MutateRequest",
    "ShutdownRequest",
    "CONTROL_KINDS",
    "control_from_wire",
    "request_from_wire",
    "apply_mutation",
    "mutate_session",
    "recover_session",
    "MutationWAL",
    "FAIL_AFTER_ENV",
    "QueryError",
    "QueryResult",
    "result_from_wire",
    "ERROR_BAD_REQUEST",
    "ERROR_UNKNOWN_DATASET",
    "ERROR_NODE_OUT_OF_RANGE",
    "ERROR_INTERNAL",
    "ERROR_UNAVAILABLE",
    "ERROR_OVERLOADED",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_TIMEOUT",
    "RETRYABLE_ERROR_CODES",
    "Address",
    "parse_address",
    "LineChannel",
    "OversizedLineError",
    "DEFAULT_MAX_LINE_BYTES",
    "SocketServer",
    "HashRing",
    "WorkerPool",
    "Router",
    "ServiceConfig",
    "DatasetSession",
    "SimRankService",
    "ParallelExecutor",
    "SimRankClient",
    "ServiceError",
    "RetryPolicy",
    "PROTOCOL_VERSION",
    "RequestEnvelope",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
    "encode_frame",
    "encode_response",
    "decode_envelope",
    "decode_envelope_line",
    "response_frames",
    "result_from_frames",
]
