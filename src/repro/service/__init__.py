"""Typed request/response service API over the query engine.

This package is the serving boundary of the repository — the layer a CLI,
batch runner, or future async/HTTP front end talks to.  The layering is
strictly::

    service   (typed requests -> result envelopes, named dataset sessions)
       |
    engine    (QueryEngine: batching, LRU cache, statistics; planner routing)
       |
    backend   (SLING index, disk-backed SLING, baselines)

* :mod:`repro.service.queries` — frozen, validated request dataclasses
  (:class:`SinglePairQuery`, :class:`SingleSourceQuery`, :class:`TopKQuery`,
  :class:`AllPairsQuery`);
* :mod:`repro.service.results` — the :class:`QueryResult` envelope (value +
  dataset + backend + plan + latency + cache-hit flag, or a structured
  :class:`QueryError` — bad requests never raise across the boundary);
* :mod:`repro.service.service` — :class:`SimRankService`, which manages named
  dataset sessions (lazy open via the planner and memory budget, per-backend
  engines, close / list / aggregate statistics);
* :mod:`repro.service.wire` — the JSONL wire protocol (``repro batch``
  streams request lines through the service and emits envelope lines);
* :mod:`repro.service.parallel` — :class:`ParallelExecutor`, the worker pool
  behind ``repro batch --workers N`` and the ``repro serve`` loop: chunked
  concurrent execution with deterministic ordered output, per-request error
  envelopes, and per-chunk deduplication of identical read queries.
"""

from .queries import (
    QUERY_KINDS,
    AllPairsQuery,
    Query,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    query_from_wire,
)
from .results import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_UNKNOWN_DATASET,
    QueryError,
    QueryResult,
    result_from_wire,
)
from .parallel import ParallelExecutor
from .service import DatasetSession, ServiceConfig, SimRankService
from .wire import decode_request, decode_result, encode_request, encode_result

__all__ = [
    "Query",
    "SinglePairQuery",
    "SingleSourceQuery",
    "TopKQuery",
    "AllPairsQuery",
    "QUERY_KINDS",
    "query_from_wire",
    "QueryError",
    "QueryResult",
    "result_from_wire",
    "ERROR_BAD_REQUEST",
    "ERROR_UNKNOWN_DATASET",
    "ERROR_NODE_OUT_OF_RANGE",
    "ERROR_INTERNAL",
    "ServiceConfig",
    "DatasetSession",
    "SimRankService",
    "ParallelExecutor",
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
]
