"""The request/response facade: named dataset sessions over query engines.

:class:`SimRankService` is the layer consumers talk to.  It owns a set of
named **dataset sessions** — each one a graph plus lazily-built
:class:`~repro.engine.QueryEngine` instances (one per backend actually used,
routed by the planner under the service's memory budget) — and answers typed
:class:`~repro.service.queries.Query` objects with
:class:`~repro.service.results.QueryResult` envelopes.

The contract at this boundary is *no exceptions for bad requests*: an unknown
dataset, an out-of-range node, or an undecodable wire payload comes back as
an error envelope with a structured code, so callers (the ``repro batch``
JSONL runner today, an async/HTTP front end tomorrow) never have to guard a
dispatch with try/except.  Programming errors inside a backend are likewise
contained and reported as ``internal_error`` envelopes.

Typical use::

    service = SimRankService(ServiceConfig(scale=0.1))
    result = service.execute(TopKQuery(dataset="GrQc", node=3, k=5))
    assert result.ok and result.backend == "sling"

Sessions open lazily on first use (any registry dataset name works), or
explicitly — including over caller-supplied graphs::

    session = service.open_dataset("my-graph", graph=graph)
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..engine import (
    PAIR_AMORTIZE_THRESHOLD,
    BackendConfig,
    QueryEngine,
    backend_names,
    create_engine,
    merge_statistics_totals,
    resolve_backend_name,
)
from ..exceptions import ParameterError, ReproError
from ..graphs import DiGraph, datasets
from ..sling import has_saved_index
from .control import ControlRequest
from .mutations import apply_mutation
from .queries import Query
from .results import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_NODE_OUT_OF_RANGE,
    ERROR_UNKNOWN_DATASET,
    QueryResult,
)
from .wire import PROTOCOL_VERSION, decode_envelope

__all__ = ["ServiceConfig", "DatasetSession", "SimRankService"]

#: Bound on the canonical-name memo (raw client spelling -> session key);
#: cleared wholesale when full, so hostile name churn cannot grow it.
_CANONICAL_MEMO_LIMIT = 4096


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide policy: how sessions load graphs and build engines."""

    #: Default backend label for every session; ``"auto"`` lets the planner
    #: route from :attr:`memory_budget_bytes`.
    backend: str = "auto"
    #: Memory budget handed to the planner when routing ``"auto"`` queries.
    memory_budget_bytes: int | None = None
    #: Per-engine LRU capacity for single-source vectors (0 disables).
    cache_size: int = 128
    #: Fixed per-*process* cache budget, in single-source vectors.  When set
    #: it overrides :attr:`cache_size`: the budget is divided evenly among the
    #: open sessions (re-divided on every open/close, shrinking engines evict
    #: LRU-first).  This is the serving-at-scale memory model: one worker box
    #: has a fixed amount of cache RAM, so sharding datasets across more
    #: workers gives each dataset a larger slice of it.
    cache_budget_vectors: int | None = None
    #: Root directory of prebuilt indexes (one subdirectory per dataset name,
    #: as written by :func:`repro.sling.save_index`).  A session whose name
    #: has a saved index under this root mmaps it read-only via the
    #: ``sling-disk`` backend instead of building — how every worker in a
    #: pool shares one packed index at near-zero per-worker cost.
    index_dir: str | None = None
    #: Stand-in scale applied when loading registry datasets.
    scale: float = 1.0
    #: Seed for registry dataset generation.
    seed: int = 0
    #: When ``False`` the planner must route to an index-free baseline.
    allow_index_build: bool = True
    #: Time-to-live for cached single-source vectors, in seconds; ``None``
    #: means entries never expire (forwarded to every engine).
    cache_ttl_seconds: float | None = None
    #: Standalone single-pair probes on one source before that source's
    #: vector is admitted to the cache; ``None`` disables cross-kind
    #: admission (forwarded to every engine).
    pair_admission_threshold: int | None = PAIR_AMORTIZE_THRESHOLD
    #: Directory for per-dataset mutation write-ahead logs.  When set, every
    #: acknowledged ``mutate`` is fsync'd to ``<wal_dir>/<dataset>.wal``
    #: before the ack, and (re)opening a dataset replays checkpoint + tail
    #: so a restarted worker serves the pre-crash dynamic index (see
    #: :mod:`repro.service.wal`).  ``None`` keeps mutations memory-only.
    wal_dir: str | None = None
    #: Accuracy / seed knobs forwarded to backend construction.
    backend_config: BackendConfig = field(default_factory=BackendConfig)


class DatasetSession:
    """One named dataset: its graph plus per-backend query engines.

    Engines build lazily on first use and are keyed by resolved backend name
    (``"auto"`` is its own key — the planner's pick for this graph), so a
    session can serve the planner-routed path and explicitly-pinned backends
    side by side without rebuilding indexes.
    """

    def __init__(self, name: str, graph: DiGraph, config: ServiceConfig) -> None:
        self._name = name
        self._graph = graph
        self._config = config
        #: Effective per-engine LRU capacity; the service re-divides a
        #: ``cache_budget_vectors`` budget into this as sessions come and go.
        self._cache_capacity = config.cache_size
        #: Monotonic mutation version of the session's index; 0 until a
        #: ``mutate`` request lands (see :mod:`repro.service.mutations`).
        self._index_version = 0
        self._engines: OrderedDict[str, QueryEngine] = OrderedDict()
        #: Requested label (or ``None`` = service default) -> (engine, cached
        #: wire-form plan).  One dict lookup on the per-query hot path.
        self._by_label: dict[str | None, tuple[QueryEngine, dict | None]] = {}
        # Serialises lazy engine builds: concurrent first queries on the same
        # session wait for one index build instead of racing several.
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        """The session's name — the key queries address it by."""
        return self._name

    @property
    def graph(self) -> DiGraph:
        """The graph this session answers queries on."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Node count of the session's graph."""
        return self._graph.num_nodes

    @property
    def index_version(self) -> int:
        """Monotonic mutation version (0 = the graph was never mutated)."""
        return self._index_version

    def backends(self) -> list[str]:
        """Engine keys built so far, in first-use order."""
        return list(self._engines)

    def engine(self, backend: str | None = None) -> QueryEngine:
        """The engine for ``backend`` (default: the service's), building it
        on first use via the planner + memory budget."""
        return self.engine_and_plan(backend)[0]

    def engine_and_plan(
        self, backend: str | None = None
    ) -> tuple[QueryEngine, dict | None]:
        """The engine for ``backend`` plus the wire form of its query plan.

        Engines are shared across alias spellings (keyed by resolved backend
        name); the plan dict is computed once at build time because it never
        changes afterwards and per-query envelopes must not rebuild it.

        Thread-safe: the memoised fast path is one (GIL-atomic) dict read;
        the build path runs under the session lock, so concurrent first
        queries on a session produce exactly one engine per backend key.
        """
        cached = self._by_label.get(backend)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._by_label.get(backend)
            if cached is not None:
                return cached
            label = backend if backend is not None else self._config.backend
            key = "auto" if label == "auto" else resolve_backend_name(label)
            engine = self._engines.get(key)
            if engine is None:
                saved = self._saved_index_dir(label)
                if saved is not None:
                    # A prebuilt index for this dataset exists: attach to it
                    # zero-copy instead of building.  Answers are bitwise
                    # identical to the index that was saved (PR 5 guarantee),
                    # so a pool of workers sharing one index directory stays
                    # in exact agreement.
                    engine = create_engine(
                        self._graph,
                        backend="sling-disk",
                        memory_budget_bytes=self._config.memory_budget_bytes,
                        config=replace(
                            self._config.backend_config,
                            work_directory=str(saved),
                            reuse_saved_index=True,
                        ),
                        cache_size=self._cache_capacity,
                        cache_ttl_seconds=self._config.cache_ttl_seconds,
                        pair_admission_threshold=(
                            self._config.pair_admission_threshold
                        ),
                        allow_index_build=True,
                    )
                else:
                    engine = create_engine(
                        self._graph,
                        backend=label,
                        memory_budget_bytes=self._config.memory_budget_bytes,
                        config=self._config.backend_config,
                        cache_size=self._cache_capacity,
                        cache_ttl_seconds=self._config.cache_ttl_seconds,
                        pair_admission_threshold=(
                            self._config.pair_admission_threshold
                        ),
                        allow_index_build=self._config.allow_index_build,
                    )
                self._engines[key] = engine
            plan = engine.plan.as_dict() if engine.plan else None
            self._by_label[backend] = (engine, plan)
            return engine, plan

    def _saved_index_dir(self, label: str) -> Path | None:
        """The prebuilt-index directory for this dataset, when one should be
        used: ``config.index_dir`` is set, a saved index exists under
        ``<index_dir>/<name>``, and the requested backend is the planner
        (``auto``) or a SLING flavour.  An explicitly pinned baseline backend
        is honoured — the operator asked for that computation."""
        root = self._config.index_dir
        if root is None:
            return None
        if label != "auto" and resolve_backend_name(label) not in (
            "sling", "sling-disk"
        ):
            return None
        candidate = Path(root) / self._name
        return candidate if has_saved_index(candidate) else None

    def set_cache_capacity(self, cache_size: int) -> None:
        """Re-size every engine's LRU (and future engines') to ``cache_size``
        vectors — the service calls this when re-dividing its cache budget."""
        with self._lock:
            self._cache_capacity = cache_size
            engines = list(self._engines.values())
        for engine in engines:
            engine.resize_cache(cache_size)

    def statistics(self) -> dict:
        """Per-session statistics: graph size plus one entry per engine.

        Engine statistics are snapshotted, so the dict is consistent even
        while other threads keep querying the session.
        """
        return {
            "dataset": self._name,
            "num_nodes": self._graph.num_nodes,
            "num_edges": self._graph.num_edges,
            "index_version": self._index_version,
            "engines": {
                key: engine.statistics_snapshot().as_dict()
                for key, engine in list(self._engines.items())
            },
        }

    def describe(self) -> dict:
        """Self-description for the ``describe`` control request: graph
        size plus one full :meth:`~repro.engine.QueryEngine.describe` entry
        per engine built so far."""
        return {
            "dataset": self._name,
            "num_nodes": self._graph.num_nodes,
            "num_edges": self._graph.num_edges,
            "index_version": self._index_version,
            "engines": {
                key: engine.describe()
                for key, engine in list(self._engines.items())
            },
        }

    def total_queries(self) -> int:
        """Queries answered across every engine of this session."""
        return sum(e.statistics.total_queries for e in self._engines.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatasetSession({self._name!r}, n={self._graph.num_nodes}, "
            f"engines={list(self._engines)})"
        )


class SimRankService:
    """Typed request/response API over named dataset sessions.

    Thread safety: one service may be shared by concurrent request threads
    (:class:`~repro.service.ParallelExecutor`, ``repro serve``).  Session
    management — opening, closing, listing — is serialised behind a service
    lock (so two threads first-touching the same dataset load its graph
    once); query execution only pays that lock when it has to open a
    session, and the per-query hot path stays lock-free down to the engine,
    whose own lock guards the cache and statistics.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config or ServiceConfig()
        self._sessions: OrderedDict[str, DatasetSession] = OrderedDict()
        #: Raw client spelling -> resolved session key.  Keeps case-variant
        #: traffic ("grqc" for "GrQc") on the lock-free execute fast path
        #: instead of paying the RLock + registry scan on every query.
        self._canonical_memo: dict[str, str] = {}
        #: Session key -> its open :class:`~repro.service.wal.MutationWAL`
        #: (only when :attr:`ServiceConfig.wal_dir` is set).
        self._wals: dict[str, object] = {}
        # Chaos-harness knob: a per-query stall, in milliseconds, simulating
        # a slow shard.  Read once at construction so a worker subprocess is
        # armed by its environment; the control plane (ping) is unaffected,
        # keeping the router's health checks honest.
        try:
            self._slow_query_ms = float(os.environ.get("REPRO_FAULT_SLOW_MS", 0))
        except ValueError:
            self._slow_query_ms = 0.0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Session management
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> ServiceConfig:
        """The policy this service was created with."""
        return self._config

    def _canonical(self, name: str) -> str:
        """Resolve ``name`` case-insensitively against open sessions, then
        the dataset registry; unknown names pass through unchanged.

        Successful resolutions are memoized so repeat spellings skip the
        scans; pass-throughs are *not* — an unknown name must keep resolving
        freshly in case a session is later opened under a matching key.
        """
        memoized = self._canonical_memo.get(name)
        if memoized is not None:
            return memoized
        lowered = name.lower()
        for key in self._sessions:
            if key.lower() == lowered:
                self._memoize(name, key)
                return key
        for key in datasets.dataset_names():
            if key.lower() == lowered:
                self._memoize(name, key)
                return key
        return name

    def _memoize(self, name: str, key: str) -> None:
        if len(self._canonical_memo) >= _CANONICAL_MEMO_LIMIT:
            self._canonical_memo.clear()
        self._canonical_memo[name] = key

    def _drop_memo_for(self, key: str) -> None:
        """Forget memo entries resolving to ``key`` — called when its session
        closes, so a stale spelling cannot shadow a later re-registration."""
        stale = [
            raw for raw, resolved in self._canonical_memo.items()
            if resolved == key
        ]
        for raw in stale:
            del self._canonical_memo[raw]

    def open_dataset(
        self, name: str, *, graph: DiGraph | None = None
    ) -> DatasetSession:
        """The session for ``name``, opening it if needed.

        Without ``graph``, the name must be a registry dataset
        (:func:`repro.graphs.datasets.load_dataset`, at the service's scale
        and seed); with ``graph``, any name registers the caller's graph as a
        session — how the examples serve generated graphs.  Re-opening an
        existing session returns it unchanged (a conflicting ``graph`` raises
        :class:`~repro.exceptions.ParameterError`).
        """
        with self._lock:
            key = self._canonical(name)
            session = self._sessions.get(key)
            if session is not None:
                if graph is not None and graph is not session.graph:
                    raise ParameterError(
                        f"dataset session {key!r} is already open over a "
                        "different graph"
                    )
                return session
            if graph is None:
                graph = datasets.load_dataset(
                    key, scale=self._config.scale, seed=self._config.seed
                )
            session = DatasetSession(key, graph, self._config)
            self._sessions[key] = session
            self._apply_cache_budget()
            if self._config.wal_dir is not None:
                from .mutations import recover_session
                from .wal import MutationWAL

                wal = MutationWAL(self._config.wal_dir, key)
                self._wals[key] = wal
                if wal.has_history():
                    # Replay checkpoint + tail so the fresh session serves
                    # the pre-crash dynamic index, not the base graph.
                    recover_session(session, wal)
            return session

    def close_dataset(self, name: str) -> bool:
        """Drop the session (graph, engines, caches); ``False`` if not open."""
        with self._lock:
            key = self._canonical(name)
            closed = self._sessions.pop(key, None) is not None
            if closed:
                self._drop_memo_for(key)
                self._apply_cache_budget()
                wal = self._wals.pop(key, None)
                if wal is not None:
                    wal.close()
            return closed

    def _apply_cache_budget(self) -> None:
        """Re-divide ``cache_budget_vectors`` evenly among the open sessions.

        Called under the service lock whenever the session set changes; a
        no-op without a budget.  Fewer sessions per process (i.e. more
        workers sharding the same datasets) means a larger per-dataset LRU
        from the same fixed memory — the mechanism that makes scale-out pay
        on skewed workloads.
        """
        budget = self._config.cache_budget_vectors
        if budget is None:
            return
        count = len(self._sessions)
        if budget <= 0:
            # A zero budget is the documented "caching disabled" setting; it
            # must not round up to one vector per session.
            share = 0
        else:
            share = max(1, budget // count) if count else budget
        for session in self._sessions.values():
            session.set_cache_capacity(share)

    def close_all(self) -> None:
        """Drop every session."""
        with self._lock:
            self._sessions.clear()
            self._canonical_memo.clear()
            for wal in self._wals.values():
                wal.close()
            self._wals.clear()

    def wal_for(self, name: str):
        """The open WAL for ``name``'s session, or ``None`` (no ``wal_dir``,
        or the session is not open)."""
        with self._lock:
            return self._wals.get(self._canonical(name))

    def list_datasets(self) -> list[str]:
        """Names of the open sessions, in opening order."""
        with self._lock:
            return list(self._sessions)

    def statistics(self) -> dict:
        """Aggregate statistics: per-session detail plus service-wide totals.

        Per-engine numbers come from consistent snapshots, so the totals add
        up even while other threads keep executing queries.
        """
        with self._lock:
            sessions = list(self._sessions.items())
        per_dataset = {}
        engine_dicts: list[dict] = []
        for name, session in sessions:
            detail = session.statistics()
            wal = self._wals.get(name)
            if wal is not None:
                detail["wal"] = wal.stats()
            per_dataset[name] = detail
            engine_dicts.extend(detail["engines"].values())
        # One definition of "service-wide totals", shared with the router's
        # fan-out merge: every engine counter summed, hit rates and latency
        # percentiles recomputed from the merged windows (quantiles cannot
        # be summed).
        totals = merge_statistics_totals(engine_dicts)
        return {"datasets": per_dataset, "totals": totals}

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query,
        *,
        backend: str | None = None,
        degrade: bool = False,
    ) -> QueryResult:
        """Answer one typed query; every failure is an error envelope.

        ``seconds`` on the envelope is the service-observed latency — on the
        first query of a session that includes the lazy graph load and index
        build.  With ``degrade=True`` (the executor's overload-pressure
        signal) an exact ``single_source`` is answered via the cheaper
        cascade kernel when the backend supports it, and the envelope is
        stamped ``degraded: true``.
        """
        start = time.perf_counter()
        kind, dataset = query.kind, query.dataset
        if self._slow_query_ms > 0:
            time.sleep(self._slow_query_ms / 1000.0)

        # Steady-state fast path: the session exists and its engine is memoized,
        # so reaching the engine costs two dict lookups.  Case-variant
        # spellings take one more through the canonical memo — still
        # lock-free — instead of falling into open_dataset's RLock and
        # registry scan on every query.
        session = self._sessions.get(dataset)
        if session is None:
            key = self._canonical_memo.get(dataset)
            if key is not None:
                session = self._sessions.get(key)
        if session is None:
            try:
                session = self.open_dataset(dataset)
            except ParameterError as exc:
                # A known dataset name that still fails to load is a
                # service-side problem (bad scale, broken generator), not the
                # client naming an unknown dataset.
                known = any(
                    key.lower() == dataset.lower()
                    for key in datasets.dataset_names()
                )
                code = ERROR_INTERNAL if known else ERROR_UNKNOWN_DATASET
                return self._fail(code, str(exc), query, start)
            except Exception as exc:  # noqa: BLE001 - the boundary must not leak
                return self._fail(
                    ERROR_INTERNAL, f"{type(exc).__name__}: {exc}", query, start
                )
        try:
            engine, plan = session.engine_and_plan(backend)
        except ParameterError as exc:
            return self._fail(ERROR_BAD_REQUEST, str(exc), query, start)
        except Exception as exc:  # noqa: BLE001 - lazy index builds can fail too
            return self._fail(
                ERROR_INTERNAL, f"{type(exc).__name__}: {exc}", query, start
            )

        n = session.num_nodes
        # Captured *before* the engine call: a mutation landing mid-query may
        # make the answer fresher than this stamp, never staler — the engine
        # cache refuses entries whose stamp trails its own version, and
        # ``mutate_session`` bumps the engine before publishing the session
        # version.  Claiming a version newer than the served value would
        # defeat the ``index_version`` echo clients use to reason about
        # staleness.
        version = session.index_version
        cache_hit: bool | None
        degraded = False
        try:
            if kind == "single_pair":
                if query.node_u >= n or query.node_v >= n:
                    return self._out_of_range(query, session, start)
                value: object = engine.single_pair(query.node_u, query.node_v)
            elif kind == "single_source":
                if query.node >= n:
                    return self._out_of_range(query, session, start)
                if degrade:
                    try:
                        # Shed the exact path under pressure: the cascade
                        # kernel answers within the backend's certified
                        # accuracy at a fraction of the cost.  Bypasses the
                        # engine cache, so no hit attribution.
                        value = engine.backend.single_source(
                            query.node, method="cascade"
                        ).tolist()
                        degraded = True
                    except TypeError:
                        # Backend without a method switch: no cheaper path.
                        value = engine.single_source(query.node).tolist()
                else:
                    value = engine.single_source(query.node).tolist()
            elif kind == "top_k":
                if query.node >= n:
                    return self._out_of_range(query, session, start)
                value = [
                    {"rank": rank, "node": node, "score": score}
                    for rank, (node, score) in enumerate(
                        engine.top_k(query.node, query.k), start=1
                    )
                ]
            elif kind == "all_pairs":
                value = [
                    vector.tolist()
                    for vector in engine.single_source_many(session.graph.nodes())
                ]
            else:
                return self._fail(
                    ERROR_BAD_REQUEST, f"unsupported query kind {kind!r}",
                    query, start,
                )
        except ReproError as exc:
            return self._fail(ERROR_BAD_REQUEST, str(exc), query, start)
        except Exception as exc:  # noqa: BLE001 - the boundary must not leak
            return self._fail(
                ERROR_INTERNAL, f"{type(exc).__name__}: {exc}", query, start
            )

        # Attributed per calling thread — under concurrent execution the
        # aggregate counters interleave, so a counter delta would claim other
        # threads' hits as this request's.
        if kind == "all_pairs" or degraded:
            cache_hit = None
        else:
            record = engine.last_query_record
            cache_hit = record.cache_hit if record is not None else None
        # Only mutated sessions stamp a version, so the wire form of a
        # static service is byte-for-byte what it was before mutations
        # existed.
        return QueryResult.success(
            kind=kind,
            dataset=session.name,
            value=value,
            backend=engine.backend.name,
            plan=plan,
            seconds=time.perf_counter() - start,
            cache_hit=cache_hit,
            index_version=version if version > 0 else None,
            degraded=degraded,
        )

    @staticmethod
    def _fail(code: str, message: str, query: Query, start: float) -> QueryResult:
        return QueryResult.failure(
            code, message, kind=query.kind, dataset=query.dataset,
            seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _out_of_range(
        query: Query, session: DatasetSession, start: float
    ) -> QueryResult:
        nodes = {
            name: value
            for name in ("node", "node_u", "node_v")
            if (value := getattr(query, name, None)) is not None
            and value >= session.num_nodes
        }
        described = ", ".join(f"{name}={value}" for name, value in nodes.items())
        return QueryResult.failure(
            ERROR_NODE_OUT_OF_RANGE,
            f"{described} out of range for dataset {session.name!r} "
            f"with {session.num_nodes} nodes",
            kind=query.kind,
            dataset=query.dataset,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #
    def hello_payload(self) -> dict:
        """The ``hello`` frame a serve loop opens with (minus encoding):
        protocol version, available backends, and open datasets.

        Shared with the in-process client transport, so both transports
        advertise identically.
        """
        return {
            "v": PROTOCOL_VERSION,
            "frame": "hello",
            "protocol": PROTOCOL_VERSION,
            "backends": ["auto", *backend_names()],
            "default_backend": self._config.backend,
            "datasets": self.list_datasets(),
            "registry": list(datasets.dataset_names()),
        }

    def describe(self, dataset: str | None = None) -> dict:
        """Self-description: the whole service, or one *open* session.

        The service-level form carries the protocol version, backends, open
        sessions, and the session-shaping config; the session-level form
        delegates to :meth:`DatasetSession.describe` (graph size, per-engine
        plans, cache state, statistics).  Raises
        :class:`~repro.exceptions.ParameterError` for a session that is not
        open — describing must stay cheap, so it never triggers a graph
        load or index build.
        """
        if dataset is None:
            return {
                "protocol": PROTOCOL_VERSION,
                "backends": ["auto", *backend_names()],
                "datasets": self.list_datasets(),
                "registry": list(datasets.dataset_names()),
                "config": {
                    "backend": self._config.backend,
                    "memory_budget_bytes": self._config.memory_budget_bytes,
                    "cache_size": self._config.cache_size,
                    "cache_budget_vectors": self._config.cache_budget_vectors,
                    "cache_ttl_seconds": self._config.cache_ttl_seconds,
                    "pair_admission_threshold": (
                        self._config.pair_admission_threshold
                    ),
                    "index_dir": self._config.index_dir,
                    "wal_dir": self._config.wal_dir,
                    "scale": self._config.scale,
                    "seed": self._config.seed,
                    "allow_index_build": self._config.allow_index_build,
                },
            }
        with self._lock:
            session = self._sessions.get(self._canonical(dataset))
        if session is None:
            raise ParameterError(
                f"dataset session {dataset!r} is not open; "
                "open_dataset it first (describe never opens sessions)"
            )
        return session.describe()

    def execute_control(self, request: ControlRequest) -> QueryResult:
        """Answer one control-plane request as a :class:`QueryResult`.

        Same boundary contract as :meth:`execute`: failures come back as
        structured error envelopes, never exceptions.  ``shutdown`` only
        *acknowledges* here — actually stopping is the serve loop's job
        (it watches for the acknowledged envelope); an in-process caller
        has nothing to stop.
        """
        start = time.perf_counter()
        kind = request.kind
        dataset = getattr(request, "dataset", None)
        try:
            if kind == "ping":
                value: object = {"pong": True, "protocol": PROTOCOL_VERSION}
            elif kind == "list_datasets":
                value = {"datasets": self.list_datasets()}
            elif kind == "stats":
                value = self.statistics()
            elif kind == "open_dataset":
                already = self._canonical(dataset) in self.list_datasets()
                session = self.open_dataset(dataset)
                value = {
                    "dataset": session.name,
                    "num_nodes": session.num_nodes,
                    "num_edges": session.graph.num_edges,
                    "already_open": already,
                }
                dataset = session.name
            elif kind == "close_dataset":
                value = {"dataset": dataset, "closed": self.close_dataset(dataset)}
            elif kind == "describe":
                value = self.describe(dataset)
            elif kind == "mutate":
                # Owns its full error mapping (unknown dataset, out-of-range
                # endpoints, read-only backend) in repro.service.mutations.
                return apply_mutation(self, request, start)
            elif kind == "shutdown":
                value = {"stopping": True}
            else:
                return QueryResult.failure(
                    ERROR_BAD_REQUEST,
                    f"unsupported control kind {kind!r}",
                    kind=kind,
                    dataset=dataset,
                    seconds=time.perf_counter() - start,
                )
        except ParameterError as exc:
            known = dataset is not None and any(
                key.lower() == dataset.lower() for key in datasets.dataset_names()
            )
            code = ERROR_UNKNOWN_DATASET
            if kind == "open_dataset" and known:
                # A registry dataset that fails to *load* is a service-side
                # problem, mirroring the lazy-open path in execute().
                code = ERROR_INTERNAL
            return QueryResult.failure(
                code, str(exc), kind=kind, dataset=dataset,
                seconds=time.perf_counter() - start,
            )
        except Exception as exc:  # noqa: BLE001 - the boundary must not leak
            return QueryResult.failure(
                ERROR_INTERNAL, f"{type(exc).__name__}: {exc}",
                kind=kind, dataset=dataset,
                seconds=time.perf_counter() - start,
            )
        return QueryResult.success(
            kind=kind,
            dataset=dataset,
            value=value,
            backend=None,
            plan=None,
            seconds=time.perf_counter() - start,
            cache_hit=None,
        )

    def execute_request(
        self,
        request: Query | ControlRequest | QueryResult,
        *,
        backend: str | None = None,
        degrade: bool = False,
    ) -> QueryResult:
        """Answer a typed request from either plane (the union dispatch).

        A pre-failed :class:`QueryResult` (from envelope decoding) passes
        through untouched, so callers can feed decoded lines in blindly.
        """
        if isinstance(request, QueryResult):
            return request
        if isinstance(request, ControlRequest):
            return self.execute_control(request)
        return self.execute(request, backend=backend, degrade=degrade)

    def execute_wire(self, payload: object) -> QueryResult:
        """Decode one wire dict and execute it; decoding failures become
        ``bad_request`` envelopes (the guarantee ``repro batch`` relies on).

        Speaks the full v2 surface: envelope keys (``v``/``id``/
        ``chunk_size``) are accepted and ignored here — they shape the
        *frames*, which are the transport's concern — and control kinds
        dispatch to :meth:`execute_control`, so batch, serve, and the
        parallel executor all gain the control plane through this one door.
        """
        return self.execute_request(decode_envelope(payload).request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimRankService(sessions={self.list_datasets()}, "
            f"backend={self._config.backend!r})"
        )
