"""JSON / JSONL encoding of service requests and responses.

The wire protocol is line-oriented: one JSON object per line, requests in,
result envelopes out.  A request line looks like::

    {"kind": "top_k", "dataset": "GrQc", "node": 3, "k": 5}

and comes back as::

    {"ok": true, "kind": "top_k", "dataset": "GrQc", "seconds": ...,
     "value": [{"rank": 1, "node": ..., "score": ...}, ...],
     "backend": "sling", "plan": {...}, "cache_hit": false}

Malformed lines never raise across the boundary — they decode into error
envelopes (``ok: false`` with a structured ``error`` object), which is what
``repro batch`` emits for them.  This module owns the string-level layer
(encode/decode one line); the dict-level codecs live with the dataclasses
(:func:`~repro.service.queries.query_from_wire`,
:func:`~repro.service.results.result_from_wire`).
"""

from __future__ import annotations

import json

from ..exceptions import ParameterError, WireFormatError
from .queries import Query, query_from_wire
from .results import ERROR_BAD_REQUEST, QueryResult, result_from_wire

__all__ = [
    "encode_request",
    "decode_request",
    "decode_query_or_failure",
    "encode_result",
    "decode_result",
]


def encode_request(query: Query) -> str:
    """One JSONL line for ``query``."""
    return json.dumps(query.to_wire(), separators=(", ", ": "))


def decode_request(line: str) -> Query:
    """Parse one JSONL request line into a typed query.

    Raises :class:`~repro.exceptions.WireFormatError` when the line is not
    valid JSON or not a well-formed request (callers that must not raise —
    the batch runner — catch it and emit an error envelope instead).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    return query_from_wire(payload)


def decode_query_or_failure(payload: object) -> Query | QueryResult:
    """Decode one wire payload into a typed query, or a ``bad_request``
    envelope when it cannot be decoded.

    The one place the decode-failure envelope is shaped (best-effort
    ``kind``/``dataset`` context included), shared by
    :meth:`~repro.service.service.SimRankService.execute_wire` and the
    :class:`~repro.service.parallel.ParallelExecutor` so their envelopes
    can never diverge.
    """
    try:
        return query_from_wire(payload)
    except (WireFormatError, ParameterError) as exc:
        kind = payload.get("kind") if isinstance(payload, dict) else None
        dataset = payload.get("dataset") if isinstance(payload, dict) else None
        return QueryResult.failure(
            ERROR_BAD_REQUEST,
            str(exc),
            kind=kind if isinstance(kind, str) else None,
            dataset=dataset if isinstance(dataset, str) else None,
        )


def encode_result(result: QueryResult) -> str:
    """One JSONL line for ``result``."""
    return json.dumps(result.to_wire(), separators=(", ", ": "))


def decode_result(line: str) -> QueryResult:
    """Parse one JSONL result line back into a :class:`QueryResult`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    return result_from_wire(payload)
