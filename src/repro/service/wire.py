"""JSON / JSONL encoding of service requests and responses (protocol v2).

The wire protocol is line-oriented: one JSON object per line, requests in,
frames out.  A v2 request is a query or control body, optionally wrapped
with envelope keys::

    {"v": 2, "id": 7, "kind": "top_k", "dataset": "GrQc", "node": 3, "k": 5}

and comes back as a response envelope that echoes the id::

    {"v": 2, "id": 7, "ok": true, "kind": "top_k", "dataset": "GrQc",
     "seconds": ..., "value": [...], "backend": "sling", "plan": {...},
     "cache_hit": false}

The envelope keys are:

* ``id`` — an optional client-assigned correlation token (string or int),
  echoed verbatim on every frame of the response.  Ids are opaque to the
  server: it neither requires nor deduplicates them.
* ``v`` — the protocol version the client speaks (``1`` or ``2``).  Bare
  v1 lines (no envelope keys at all) keep working: they decode as v2 with
  ``id: null`` and are answered unchunked.
* ``chunk_size`` — ask for a large list-valued result (``single_source``,
  ``all_pairs``) to be streamed as bounded ``partial`` frames followed by a
  terminal ``done`` frame instead of one giant line::

      {"v":2,"frame":"partial","id":7,"kind":"single_source", ...,
       "seq":0,"offset":0,"value":[...at most chunk_size items...]}
      {"v":2,"frame":"done","id":7,"ok":true, ..., "chunks":4,"total":2048}

  The ``done`` frame carries everything a monolithic response does except
  ``value``; concatenating the partials in ``seq`` order reconstructs the
  value exactly (:func:`result_from_frames`).

A serve loop additionally opens with a ``hello`` frame (``{"v":2,
"frame":"hello","protocol":2,...}``) advertising the protocol version,
available backends, and open datasets — see
:meth:`~repro.service.service.SimRankService.hello_payload`.

Malformed lines never raise across the boundary — they decode into error
envelopes (``ok: false`` with a structured ``error`` object), which is what
``repro batch`` emits for them.  This module owns the string-level layer
and the envelope codec; the dict-level body codecs live with the
dataclasses (:func:`~repro.service.queries.query_from_wire`,
:func:`~repro.service.control.request_from_wire`,
:func:`~repro.service.results.result_from_wire`).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..exceptions import ParameterError, WireFormatError
from .control import ControlRequest, request_from_wire
from .queries import Query, query_from_wire
from .results import ERROR_BAD_REQUEST, QueryResult, result_from_wire

__all__ = [
    "PROTOCOL_VERSION",
    "ENVELOPE_KEYS",
    "RequestEnvelope",
    "encode_request",
    "decode_request",
    "decode_query_or_failure",
    "decode_envelope",
    "decode_envelope_line",
    "encode_result",
    "decode_result",
    "encode_frame",
    "encode_response",
    "response_frames",
    "result_from_frames",
]

#: The protocol version this codebase speaks (and advertises in ``hello``).
PROTOCOL_VERSION = 2

#: Compact separators — wire lines carry no padding whitespace.
_SEPARATORS = (",", ":")

#: Request-envelope keys, stripped before the body is decoded.
ENVELOPE_KEYS = frozenset({"v", "id", "chunk_size", "deadline_ms"})

#: Result kinds whose list values may be chunked into ``partial`` frames.
CHUNKABLE_KINDS = frozenset({"single_source", "all_pairs"})


def _dumps(payload: dict) -> str:
    return json.dumps(payload, separators=_SEPARATORS)


# --------------------------------------------------------------------- #
# v1 string-level codec (kept verbatim for embedders and the tests)
# --------------------------------------------------------------------- #
def encode_request(query: Query | ControlRequest) -> str:
    """One JSONL line for ``query`` (bare body, no envelope keys)."""
    return _dumps(query.to_wire())


def decode_request(line: str) -> Query:
    """Parse one JSONL request line into a typed query.

    Raises :class:`~repro.exceptions.WireFormatError` when the line is not
    valid JSON or not a well-formed request (callers that must not raise —
    the batch runner — catch it and emit an error envelope instead).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    return query_from_wire(payload)


def decode_query_or_failure(payload: object) -> Query | QueryResult:
    """Decode one wire payload into a typed query, or a ``bad_request``
    envelope when it cannot be decoded.

    The query-plane-only sibling of :func:`decode_envelope` — kept for
    embedders that speak the PR 2 protocol; the service and executor now
    route through the envelope decoder so control requests work everywhere.
    """
    try:
        return query_from_wire(payload)
    except (WireFormatError, ParameterError) as exc:
        return _decode_failure(payload, exc)


def _decode_failure(payload: object, exc: Exception) -> QueryResult:
    """The one place decode-failure envelopes are shaped (best-effort
    ``kind``/``dataset`` context included), so they can never diverge
    between the service, the executor, and the serve loop."""
    kind = payload.get("kind") if isinstance(payload, dict) else None
    dataset = payload.get("dataset") if isinstance(payload, dict) else None
    return QueryResult.failure(
        ERROR_BAD_REQUEST,
        str(exc),
        kind=kind if isinstance(kind, str) else None,
        dataset=dataset if isinstance(dataset, str) else None,
    )


# --------------------------------------------------------------------- #
# v2 request envelope
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RequestEnvelope:
    """One decoded request line: the typed body plus its envelope keys.

    ``request`` is a :class:`~repro.service.queries.Query`, a
    :class:`~repro.service.control.ControlRequest`, or — when the body (or
    the envelope itself) could not be decoded — a pre-failed
    :class:`~repro.service.results.QueryResult` that passes through
    execution untouched.  Either way the line's fate is decided here, and
    the caller keeps ``id``/``chunk_size`` to shape the response frames.
    """

    request: Query | ControlRequest | QueryResult
    id: int | str | None = None
    chunk_size: int | None = None
    v: int = PROTOCOL_VERSION
    #: Remaining end-to-end budget in milliseconds, as written on the wire.
    #: ``None`` means "no deadline" — the pre-PR-10 behaviour.  Each hop
    #: (router, worker) re-measures elapsed time against :attr:`deadline`
    #: and either decrements the budget before forwarding or sheds the
    #: request with a ``deadline_exceeded`` envelope.
    deadline_ms: float | None = None
    #: Process-local absolute deadline on the ``time.monotonic()`` clock,
    #: computed at decode time.  Never crosses the wire (monotonic clocks
    #: are per-process); ``None`` when no deadline was requested.
    deadline: float | None = None

    def expired(self, now: float | None = None) -> bool:
        """Whether the deadline has already passed (``False`` when unset)."""
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline


def decode_envelope(payload: object) -> RequestEnvelope:
    """Decode one wire payload (body + optional envelope keys) — total.

    Never raises: an undecodable envelope or body yields a
    :class:`RequestEnvelope` whose ``request`` is a ``bad_request``
    envelope.  A valid ``id`` is preserved even when the rest of the line
    is garbage, so clients can correlate their failures.
    """
    if not isinstance(payload, dict):
        return RequestEnvelope(
            request=_decode_failure(
                payload,
                WireFormatError(
                    f"request must be a JSON object, got {type(payload).__name__}"
                ),
            )
        )
    request_id = payload.get("id")
    id_ok = request_id is None or (
        isinstance(request_id, (str, int)) and not isinstance(request_id, bool)
    )
    if not id_ok:
        return RequestEnvelope(
            request=_decode_failure(
                payload,
                WireFormatError(
                    f"id must be a string, an int, or null, got {request_id!r}"
                ),
            )
        )

    def fail(message: str) -> RequestEnvelope:
        return RequestEnvelope(
            request=_decode_failure(payload, WireFormatError(message)),
            id=request_id,
        )

    version = payload.get("v", PROTOCOL_VERSION)
    if isinstance(version, bool) or not isinstance(version, int) or not (
        1 <= version <= PROTOCOL_VERSION
    ):
        return fail(
            f"unsupported protocol version {version!r}; "
            f"this server speaks v1..v{PROTOCOL_VERSION}"
        )
    chunk_size = payload.get("chunk_size")
    if chunk_size is not None and (
        isinstance(chunk_size, bool)
        or not isinstance(chunk_size, int)
        or chunk_size < 1
    ):
        return fail(f"chunk_size must be a positive int, got {chunk_size!r}")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, (int, float))
        or not math.isfinite(deadline_ms)
        or deadline_ms <= 0
    ):
        return fail(f"deadline_ms must be a positive number, got {deadline_ms!r}")

    body = {key: value for key, value in payload.items() if key not in ENVELOPE_KEYS}
    try:
        request: Query | ControlRequest | QueryResult = request_from_wire(body)
    except (WireFormatError, ParameterError) as exc:
        request = _decode_failure(body, exc)
    return RequestEnvelope(
        request=request,
        id=request_id,
        chunk_size=chunk_size,
        v=version,
        deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        deadline=(
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        ),
    )


def decode_envelope_line(line: str) -> RequestEnvelope:
    """Decode one raw JSONL line — total, like :func:`decode_envelope`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return RequestEnvelope(
            request=QueryResult.failure(ERROR_BAD_REQUEST, f"invalid JSON: {exc}")
        )
    return decode_envelope(payload)


# --------------------------------------------------------------------- #
# Response encoding
# --------------------------------------------------------------------- #
def encode_result(result: QueryResult) -> str:
    """One bare v1 JSONL line for ``result`` (no envelope keys)."""
    return _dumps(result.to_wire())


def decode_result(line: str) -> QueryResult:
    """Parse one JSONL result line back into a :class:`QueryResult`.

    Envelope keys (``v``/``id``/``frame`` metadata) are ignored, so v1 and
    v2 monolithic response lines both decode; chunked responses go through
    :func:`result_from_frames` instead.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    if isinstance(payload, dict):
        payload = {
            key: value
            for key, value in payload.items()
            if key not in ("v", "id")
        }
    return result_from_wire(payload)


def encode_frame(payload: dict) -> str:
    """One compact JSONL line for an already-shaped frame dict."""
    return _dumps(payload)


def encode_response(result: QueryResult, *, id: int | str | None = None) -> str:
    """One monolithic v2 response line: ``v`` + echoed ``id`` + envelope."""
    return _dumps({"v": PROTOCOL_VERSION, "id": id, **result.to_wire()})


def response_frames(
    result: QueryResult,
    *,
    id: int | str | None = None,
    chunk_size: int | None = None,
) -> Iterator[str]:
    """The encoded frame lines answering one request.

    Without ``chunk_size`` (or for error envelopes and non-chunkable
    kinds) this is exactly one monolithic line from :func:`encode_response`.
    With it, a list-valued ``single_source`` / ``all_pairs`` result longer
    than ``chunk_size`` streams as ``partial`` frames of at most
    ``chunk_size`` items each, then a terminal ``done`` frame — so the
    peak line size is bounded by the chunk, not the graph.
    """
    value = result.value
    if (
        not chunk_size
        or not result.ok
        or result.kind not in CHUNKABLE_KINDS
        or not isinstance(value, list)
        or len(value) <= chunk_size
    ):
        yield encode_response(result, id=id)
        return
    total = len(value)
    chunks = (total + chunk_size - 1) // chunk_size
    for seq in range(chunks):
        offset = seq * chunk_size
        yield _dumps(
            {
                "v": PROTOCOL_VERSION,
                "frame": "partial",
                "id": id,
                "kind": result.kind,
                "dataset": result.dataset,
                "seq": seq,
                "offset": offset,
                "value": value[offset : offset + chunk_size],
            }
        )
    done = {"v": PROTOCOL_VERSION, "frame": "done", "id": id, **result.to_wire()}
    del done["value"]
    done["chunks"] = chunks
    done["total"] = total
    yield _dumps(done)


def result_from_frames(frames: Sequence[dict]) -> QueryResult:
    """Reassemble one response from its decoded frame payloads.

    Accepts either a single monolithic response payload or a full
    ``partial``... ``done`` sequence; the concatenated value is exactly the
    unchunked answer.  Raises :class:`~repro.exceptions.WireFormatError`
    on gaps, misordered partials, or a length mismatch with ``done``.
    """
    if not frames:
        raise WireFormatError("no frames to reassemble")
    if len(frames) == 1 and frames[0].get("frame") is None:
        payload = {
            key: value
            for key, value in frames[0].items()
            if key not in ("v", "id")
        }
        return result_from_wire(payload)
    *partials, done = frames
    if done.get("frame") is None and done.get("ok") is False:
        # A stream may be cut short by a failure after partials were already
        # sent — the serve loop never does this, but the router does when a
        # worker dies mid-stream: the partials are discarded and the error
        # envelope is the response.
        payload = {
            key: value
            for key, value in done.items()
            if key not in ("v", "id")
        }
        return result_from_wire(payload)
    if done.get("frame") != "done":
        raise WireFormatError(
            f"chunked response must end with a done frame, got {done.get('frame')!r}"
        )
    value: list = []
    for seq, frame in enumerate(partials):
        if frame.get("frame") != "partial":
            raise WireFormatError(
                f"expected a partial frame at seq {seq}, got {frame.get('frame')!r}"
            )
        if frame.get("seq") != seq:
            raise WireFormatError(
                f"partial frames out of order: expected seq {seq}, "
                f"got {frame.get('seq')!r}"
            )
        if frame.get("offset") != len(value):
            raise WireFormatError(
                f"partial frame offset {frame.get('offset')!r} does not match "
                f"{len(value)} items received"
            )
        chunk = frame.get("value")
        if not isinstance(chunk, list):
            raise WireFormatError("partial frame value must be a list")
        value.extend(chunk)
    expected = done.get("total")
    if expected is not None and expected != len(value):
        raise WireFormatError(
            f"done frame claims {expected} items, received {len(value)}"
        )
    payload = {
        key: val
        for key, val in done.items()
        if key not in ("v", "id", "frame", "chunks", "total")
    }
    payload["value"] = value
    return result_from_wire(payload)
