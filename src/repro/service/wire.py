"""JSON / JSONL encoding of service requests and responses.

The wire protocol is line-oriented: one JSON object per line, requests in,
result envelopes out.  A request line looks like::

    {"kind": "top_k", "dataset": "GrQc", "node": 3, "k": 5}

and comes back as::

    {"ok": true, "kind": "top_k", "dataset": "GrQc", "seconds": ...,
     "value": [{"rank": 1, "node": ..., "score": ...}, ...],
     "backend": "sling", "plan": {...}, "cache_hit": false}

Malformed lines never raise across the boundary — they decode into error
envelopes (``ok: false`` with a structured ``error`` object), which is what
``repro batch`` emits for them.  This module owns the string-level layer
(encode/decode one line); the dict-level codecs live with the dataclasses
(:func:`~repro.service.queries.query_from_wire`,
:func:`~repro.service.results.result_from_wire`).
"""

from __future__ import annotations

import json

from ..exceptions import WireFormatError
from .queries import Query, query_from_wire
from .results import QueryResult, result_from_wire

__all__ = [
    "encode_request",
    "decode_request",
    "encode_result",
    "decode_result",
]


def encode_request(query: Query) -> str:
    """One JSONL line for ``query``."""
    return json.dumps(query.to_wire(), separators=(", ", ": "))


def decode_request(line: str) -> Query:
    """Parse one JSONL request line into a typed query.

    Raises :class:`~repro.exceptions.WireFormatError` when the line is not
    valid JSON or not a well-formed request (callers that must not raise —
    the batch runner — catch it and emit an error envelope instead).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    return query_from_wire(payload)


def encode_result(result: QueryResult) -> str:
    """One JSONL line for ``result``."""
    return json.dumps(result.to_wire(), separators=(", ", ": "))


def decode_result(line: str) -> QueryResult:
    """Parse one JSONL result line back into a :class:`QueryResult`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireFormatError(f"invalid JSON: {exc}") from exc
    return result_from_wire(payload)
