"""Typed, validated request objects for the service layer.

Each query kind the system can answer is one frozen dataclass carrying the
name of the dataset session it targets plus its kind-specific arguments:

* :class:`SinglePairQuery` — SimRank of one ``(node_u, node_v)`` pair;
* :class:`SingleSourceQuery` — SimRank from ``node`` to every node;
* :class:`TopKQuery` — the ``k`` nodes most similar to ``node``;
* :class:`AllPairsQuery` — the full score matrix (one single-source sweep per
  node, so only sensible on small sessions).

Construction validates everything that can be checked without a graph (types,
signs, a non-empty dataset name) and raises
:class:`~repro.exceptions.ParameterError` on violation; graph-dependent checks
(does the dataset exist, is the node in range) happen inside
:class:`~repro.service.service.SimRankService`, which reports failures as
error envelopes instead of exceptions.

``to_wire`` emits the flat JSON-able dict form used by the JSONL wire
protocol; :func:`query_from_wire` is the strict inverse.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import ClassVar

from ..exceptions import ParameterError, WireFormatError

__all__ = [
    "Query",
    "SinglePairQuery",
    "SingleSourceQuery",
    "TopKQuery",
    "AllPairsQuery",
    "QUERY_KINDS",
    "query_from_wire",
    "fields_from_wire",
]


def _check_node(name: str, value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class Query:
    """Base request: every query targets one named dataset session."""

    #: Wire-protocol discriminator; overridden by each concrete kind.
    kind: ClassVar[str] = ""

    dataset: str

    def __post_init__(self) -> None:
        if not isinstance(self.dataset, str) or not self.dataset.strip():
            raise ParameterError(
                f"dataset must be a non-empty string, got {self.dataset!r}"
            )

    def to_wire(self) -> dict:
        """Flat JSON-able dict form: ``kind`` plus every dataclass field."""
        payload = {"kind": self.kind}
        for spec in fields(self):
            payload[spec.name] = getattr(self, spec.name)
        return payload


@dataclass(frozen=True)
class SinglePairQuery(Query):
    """SimRank score of the pair ``(node_u, node_v)``."""

    kind: ClassVar[str] = "single_pair"

    node_u: int
    node_v: int

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node("node_u", self.node_u)
        _check_node("node_v", self.node_v)


@dataclass(frozen=True)
class SingleSourceQuery(Query):
    """SimRank from ``node`` to every node of the dataset."""

    kind: ClassVar[str] = "single_source"

    node: int

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node("node", self.node)


@dataclass(frozen=True)
class TopKQuery(Query):
    """The ``k`` nodes most similar to ``node``, ranked."""

    kind: ClassVar[str] = "top_k"

    node: int
    k: int

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node("node", self.node)
        if isinstance(self.k, bool) or not isinstance(self.k, int) or self.k <= 0:
            raise ParameterError(f"k must be a positive int, got {self.k!r}")


@dataclass(frozen=True)
class AllPairsQuery(Query):
    """The full all-pairs score matrix of the dataset."""

    kind: ClassVar[str] = "all_pairs"


#: Wire discriminator -> query class, for :func:`query_from_wire`.
QUERY_KINDS: dict[str, type[Query]] = {
    cls.kind: cls
    for cls in (SinglePairQuery, SingleSourceQuery, TopKQuery, AllPairsQuery)
}


def fields_from_wire(cls: type, kind: str, payload: dict) -> dict:
    """Strictly extract ``cls``'s constructor arguments from a wire payload.

    Fields without defaults are required; fields with defaults are optional.
    Missing required fields and unexpected extra keys raise
    :class:`~repro.exceptions.WireFormatError`.  Shared by the query decoder
    below and the control-plane decoder
    (:func:`repro.service.control.control_from_wire`) so the two planes
    reject malformed requests identically.
    """
    specs = fields(cls)
    allowed = {spec.name for spec in specs}
    required = {
        spec.name
        for spec in specs
        if spec.default is MISSING and spec.default_factory is MISSING
    }
    given = set(payload) - {"kind"}
    missing = required - given
    if missing:
        raise WireFormatError(
            f"{kind} request is missing field(s): {', '.join(sorted(missing))}"
        )
    extra = given - allowed
    if extra:
        raise WireFormatError(
            f"{kind} request has unexpected field(s): {', '.join(sorted(extra))}"
        )
    return {name: payload[name] for name in given}


def query_from_wire(payload: object) -> Query:
    """Decode one wire dict into a typed query.

    The protocol is strict: the payload must be a JSON object whose ``kind``
    names a known query, carrying exactly that kind's fields — unknown kinds,
    missing fields, and unexpected extra keys all raise
    :class:`~repro.exceptions.WireFormatError` (field-level *value* violations
    raise :class:`~repro.exceptions.ParameterError` from the dataclass).
    """
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in QUERY_KINDS:
        raise WireFormatError(
            f"unknown query kind {kind!r}; expected one of "
            f"{', '.join(sorted(QUERY_KINDS))}"
        )
    cls = QUERY_KINDS[kind]
    return cls(**fields_from_wire(cls, kind, payload))
