"""Deterministic fault injection against the serving stack.

The robustness claims this repo makes — durable mutations, bounded
latency under faults, typed error envelopes instead of hangs — are only
claims until something actively tries to break them.  This module is that
something: a seeded harness that drives the *existing* traffic generator
(:mod:`repro.evaluation.traffic`) through a real ``repro router`` worker
pool while injecting the faults production serving actually sees, and
asserts the contract held:

* **no lost acked mutation** — every mutation the client saw acknowledged
  is present in the worker's WAL, and a fresh service recovered from that
  WAL answers within tolerance of the live pre-shutdown service;
* **no hang past the deadline** — every request resolves (success or typed
  error) within its end-to-end budget plus transport slack;
* **no wrong kind of failure** — every error envelope carries a code from
  the documented taxonomy (``unavailable`` / ``overloaded`` /
  ``deadline_exceeded`` / ``timeout``), never a raw disconnect, a bare
  traceback, or silence.

Fault repertoire (each seeded, each optional via :class:`ChaosProfile`):

* ``SIGKILL`` of the worker owning the dataset, fired milliseconds into an
  in-flight ``mutate`` — the crash-recovery drill (client retries carry a
  ``mutation_id``, so the replayed mutate deduplicates instead of applying
  twice);
* hostile frames on a raw connection — garbage lines, truncated JSON,
  half-frames followed by an abrupt disconnect, and a stalled reader that
  never sends — the router must answer typed envelopes and keep serving
  everyone else;
* disk-full on WAL append (via the WAL's byte-budget injection hook) —
  the mutation must fail *retryably*, roll back in memory, and leave the
  log replayable;
* a slow shard (via the service's per-query stall hook) under tight
  deadlines and a bounded executor — queued work must shed with
  ``deadline_exceeded`` / ``overloaded`` instead of queueing unboundedly.

``repro chaos`` is the CLI face of :func:`run_chaos`;
``benchmarks/bench_resilience.py`` runs the storm with and without faults
to record the latency cost of surviving them.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from ..engine import BackendConfig
from ..exceptions import ParameterError
from ..graphs import datasets
from ..service import ServiceConfig, SimRankService
from ..service.client import RetryPolicy, SimRankClient
from ..service.control import MutateRequest, OpenDatasetRequest
from ..service.net.channel import Address, LineChannel
from ..service.net.router import Router, WorkerPool
from ..service.queries import SingleSourceQuery
from ..service.results import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ERROR_UNAVAILABLE,
)
from ..service.wal import FAIL_AFTER_ENV, MutationWAL
from .traffic import TrafficPattern, chaos_pattern_overrides, generate_traffic

__all__ = ["ChaosProfile", "run_chaos", "run_storm"]

#: Environment variable the service reads as a per-query stall in
#: milliseconds — the slow-shard injection hook.
SLOW_SHARD_ENV = "REPRO_FAULT_SLOW_MS"

#: Error codes a fault drill is *allowed* to produce.  Anything else —
#: ``bad_request``, ``internal_error``, a raw exception — is a bug in the
#: stack (or the harness) and fails the run.
_EXPECTED_FAULT_CODES = frozenset(
    {ERROR_UNAVAILABLE, ERROR_OVERLOADED, ERROR_DEADLINE_EXCEEDED, ERROR_TIMEOUT}
)


@dataclass(frozen=True)
class ChaosProfile:
    """Every knob of one chaos run — the seed pins the fault schedule."""

    #: Seed for traffic, retry jitter, and the fault schedule.
    seed: int = 0
    #: Worker processes behind the router.
    workers: int = 2
    #: Traffic events in the storm.
    events: int = 120
    #: Stand-in graph scale (kept small: chaos measures resilience, not
    #: index build time).
    scale: float = 0.05
    #: SLING accuracy target shared by workers and the reference service.
    epsilon: float = 0.05
    #: Monte-Carlo walks (kept low for run time; unused by sling queries).
    mc_walks: int = 50
    #: The dataset the storm targets (one dataset -> one owning worker ->
    #: one deterministic kill target).
    dataset: str = "GrQc"
    #: Named :data:`~repro.evaluation.traffic.CHAOS_TRAFFIC_PROFILES` shape.
    traffic_profile: str = "mixed-faults"
    #: End-to-end budget stamped on every storm request, in ms.  Generous:
    #: it must absorb a worker restart, or recovery itself would breach it.
    deadline_ms: float = 20000.0
    #: Fire a SIGKILL into the dataset's owning worker mid-mutate.
    kill_worker: bool = True
    #: Send garbage/truncated/stalled frames on raw side connections.
    hostile_frames: bool = True
    #: Run the disk-full-on-WAL-append drill.
    disk_full: bool = True
    #: Run the slow-shard / overload-shedding drill.
    slow_shard: bool = True
    #: Injected per-query stall for the slow-shard drill, in ms.
    slow_ms: float = 300.0
    #: Deadline for slow-shard requests, in ms (well under ``slow_ms`` so
    #: queued requests expire before dispatch).
    slow_deadline_ms: float = 150.0
    #: Worker health-check interval (small: recovery time is measured).
    health_interval: float = 0.3
    #: Workers journal mutations to a WAL (the durable configuration the
    #: acceptance invariants assume); ``False`` runs a lossy storm for
    #: comparison and skips the durability invariants.
    wal: bool = True

    def __post_init__(self) -> None:
        if self.events < 1:
            raise ParameterError(f"events must be >= 1, got {self.events}")
        if self.workers < 1:
            raise ParameterError(f"workers must be >= 1, got {self.workers}")
        if self.deadline_ms <= 0 or self.slow_deadline_ms <= 0:
            raise ParameterError("deadlines must be positive")


def _serve_args(profile: ChaosProfile, wal_dir: str | None) -> list[str]:
    args = [
        "--scale", str(profile.scale),
        "--epsilon", str(profile.epsilon),
        "--seed", str(profile.seed),
        "--mc-walks", str(profile.mc_walks),
        "--backend", "sling",
        "--workers", "1",
    ]
    if wal_dir is not None:
        args += ["--wal-dir", wal_dir]
    return args


def _node_count(profile: ChaosProfile) -> int:
    spec = datasets.DATASETS[profile.dataset]
    return max(16, int(spec.standin_nodes * profile.scale))


def _storm_pattern(profile: ChaosProfile) -> TrafficPattern:
    overrides = chaos_pattern_overrides(profile.traffic_profile)
    # The harness stamps deadlines itself (per attempt, through the
    # client); a pattern-level stamp would be dead weight here.
    overrides.pop("deadline_ms", None)
    return TrafficPattern(
        num_queries=profile.events, seed=profile.seed, **overrides
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _latency_summary(seconds: list[float]) -> dict:
    ordered = sorted(seconds)
    return {
        "count": len(ordered),
        "mean_ms": (sum(ordered) / len(ordered) * 1000.0) if ordered else 0.0,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
        "max_ms": _percentile(ordered, 1.0) * 1000.0,
    }


def _kill_mid_request(pid: int, delay_seconds: float = 0.005) -> threading.Thread:
    """SIGKILL ``pid`` shortly after return — so the shot lands while the
    caller's next request is in flight, the genuinely ugly moment."""

    def fire() -> None:
        time.sleep(delay_seconds)
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:  # pragma: no cover - already gone
            pass

    thread = threading.Thread(target=fire, name="repro-chaos-kill", daemon=True)
    thread.start()
    return thread


def _hostile_frames(address, timeout: float = 10.0) -> dict:
    """Garbage, truncation, and stalls on raw connections; every complete
    line must be answered with a JSON envelope and the endpoint must keep
    serving afterwards."""
    report = {"lines_sent": 0, "envelopes": 0, "ping_ok": False, "survived": False}

    def converse(lines: list[str], *, abrupt: bool) -> list[str]:
        sock = address.connect(timeout=timeout)
        channel = LineChannel(sock)
        responses: list[str] = []
        try:
            channel.settimeout(timeout)
            channel.read_line()  # hello
            for line in lines:
                channel.send_line(line)
                response = channel.read_line()
                if response is not None:
                    responses.append(response)
            if abrupt:
                # A half-frame then a hard disconnect: the server must
                # drop the connection without taking anything else down.
                try:
                    sock = channel._sock  # type: ignore[attr-defined]
                    sock.sendall(b'{"v":2,"id":')
                except (OSError, AttributeError):
                    pass
        except (OSError, socket.timeout):
            pass
        finally:
            channel.close()
        return responses

    garbage = [
        "this is not json",
        '{"v":2,"id":7,"kind":"no_such_kind"}',
        '{"v":2,"id":8',
        "[1,2,3]",
    ]
    responses = converse(garbage, abrupt=True)
    report["lines_sent"] = len(garbage)
    report["envelopes"] = sum(
        1 for line in responses if line.lstrip().startswith("{")
    )
    # A stalled reader: connect, say nothing, hold, hang up.
    try:
        stall = address.connect(timeout=timeout)
        time.sleep(0.2)
        stall.close()
    except OSError:
        pass
    # The endpoint must still answer a clean ping after all of the above.
    pong = converse(['{"v":2,"id":"after","kind":"ping"}'], abrupt=False)
    report["ping_ok"] = any('"pong":true' in line for line in pong)
    report["survived"] = report["envelopes"] == len(garbage) and report["ping_ok"]
    return report


def run_storm(
    profile: ChaosProfile | None = None, *, inject_kill: bool | None = None
) -> dict:
    """The main drill: seeded traffic through a router-fronted worker pool,
    with (or, for baselines, without) a mid-mutation worker SIGKILL.

    Returns a report dict; see the module docstring for the invariants it
    evaluates.  ``inject_kill`` overrides ``profile.kill_worker`` so the
    resilience benchmark can run the identical storm fault-free.
    """
    profile = profile or ChaosProfile()
    if inject_kill is None:
        inject_kill = profile.kill_worker
    started = time.perf_counter()
    run_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    wal_dir = str(run_dir / "wal") if profile.wal else None
    if wal_dir is not None:
        Path(wal_dir).mkdir()

    events = generate_traffic(
        {profile.dataset: _node_count(profile)}, _storm_pattern(profile)
    )
    expected_mutations = sum(
        1 for event in events if isinstance(event.query, MutateRequest)
    )
    kill_after = max(1, expected_mutations // 3) if inject_kill else None

    pool = WorkerPool(
        profile.workers,
        serve_args=_serve_args(profile, wal_dir),
        run_dir=run_dir / "sockets",
        health_interval=profile.health_interval,
        ping_timeout=2.0,
        ping_retries=1,
    )
    outcomes: dict[str, int] = {}
    latencies: list[float] = []
    hang_budget = profile.deadline_ms / 1000.0 + 10.0
    hang_violations = 0
    acked: list[str] = []
    deduplicated = 0
    failed_mutations: list[MutateRequest] = []
    killed_at: float | None = None
    recovery_seconds: float | None = None
    failed_after_kill = False
    hostile: dict | None = None
    report: dict = {"wal": profile.wal, "killed": False, "events": len(events)}

    def record(code: str, seconds: float) -> None:
        nonlocal hang_violations
        outcomes[code] = outcomes.get(code, 0) + 1
        latencies.append(seconds)
        if seconds > hang_budget:
            hang_violations += 1

    try:
        pool.start()
        router = Router(
            pool,
            address=Address(family="unix", path=str(run_dir / "router.sock")),
            request_timeout=30.0,
            durable=profile.wal,
        )
        router.start()
        try:
            client = SimRankClient(
                address=router.address,
                timeout=10.0,
                retry=RetryPolicy(
                    max_attempts=6,
                    base_delay=0.1,
                    max_delay=1.0,
                    seed=profile.seed,
                ),
                deadline_ms=profile.deadline_ms,
            )
            client.execute(OpenDatasetRequest(profile.dataset))
            acked_mutations = 0
            for event in events:
                request = event.query
                if isinstance(request, MutateRequest):
                    request = replace(
                        request,
                        mutation_id=f"chaos-{profile.seed}-{event.index}",
                    )
                    if (
                        kill_after is not None
                        and killed_at is None
                        and acked_mutations >= kill_after
                    ):
                        pid = pool.worker_pid(
                            router.shard_for(profile.dataset)
                        )
                        if pid is not None:
                            _kill_mid_request(pid)
                            killed_at = time.monotonic()
                            report["killed"] = True
                t0 = time.monotonic()
                result = client.execute(request)
                elapsed = time.monotonic() - t0
                code = "ok" if result.ok else (
                    result.error.code if result.error else "unknown"
                )
                record(code, elapsed)
                if killed_at is not None and recovery_seconds is None:
                    if not result.ok:
                        failed_after_kill = True
                    elif failed_after_kill:
                        recovery_seconds = time.monotonic() - killed_at
                if isinstance(request, MutateRequest):
                    if result.ok:
                        acked_mutations += 1
                        acked.append(request.mutation_id)
                        if isinstance(result.value, dict) and result.value.get(
                            "deduplicated"
                        ):
                            deduplicated += 1
                    else:
                        failed_mutations.append(request)
            # Kill observed but traffic never failed/recovered in-stream:
            # recovery was faster than the next request landed.
            if killed_at is not None and recovery_seconds is None:
                recovery_seconds = time.monotonic() - killed_at

            # Settle every still-unacked mutation: the mutation_id makes
            # re-sending idempotent, so this converges the storm to a
            # fully-acknowledged history the durability check can pin.
            still_failed: list[str] = []
            for request in failed_mutations:
                for _ in range(40):
                    result = client.execute(request)
                    if result.ok:
                        acked.append(request.mutation_id)
                        break
                    time.sleep(0.25)
                else:
                    still_failed.append(request.mutation_id)

            if profile.hostile_frames:
                hostile = _hostile_frames(router.address)

            # Compact before probing: a re-freeze restores rebuild-parity
            # answers, so the recovered reference below must match the live
            # probes almost bitwise — any daylight is a lost mutation.
            final_refreeze = MutateRequest(
                dataset=profile.dataset,
                refreeze=True,
                mutation_id=f"chaos-{profile.seed}-final",
            )
            refreeze_result = client.execute(final_refreeze)
            if refreeze_result.ok:
                acked.append(final_refreeze.mutation_id)
            probe_nodes = _probe_nodes(events, _node_count(profile))
            probes: dict[int, list[float]] = {}
            for node in probe_nodes:
                result = client.execute(
                    SingleSourceQuery(dataset=profile.dataset, node=node)
                )
                if result.ok:
                    probes[node] = result.value
            client.close()
        finally:
            router.stop()  # stops the pool too
        if profile.wal:
            durability, recovery_match = _verify_wal(
                profile, wal_dir, acked, probes
            )
            report["durability"] = durability
            report["recovery_match"] = recovery_match
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)

    report.update(
        {
            "outcomes": dict(sorted(outcomes.items())),
            "unexpected_codes": sorted(
                code
                for code in outcomes
                if code not in _EXPECTED_FAULT_CODES and code != "ok"
            ),
            "latency": _latency_summary(latencies),
            "hang_budget_seconds": hang_budget,
            "hang_violations": hang_violations,
            "recovery_seconds": recovery_seconds,
            "restarts": pool.restart_counts(),
            "mutations": {
                "expected": expected_mutations,
                "acked": len(acked),
                "unacked": len(still_failed),
                "deduplicated": deduplicated,
            },
            "hostile": hostile,
        }
    )

    report["no_lost_mutations"] = (
        not profile.wal
        or (
            report["durability"]["missing_from_wal"] == []
            and report["recovery_match"]["ok"]
        )
    )
    report["seconds"] = time.perf_counter() - started
    return report


def _probe_nodes(events, num_nodes: int) -> list[int]:
    """A handful of distinct query sources from the storm, plus node 0 —
    the fixed points the live-vs-recovered comparison reads."""
    nodes: list[int] = []
    for event in events:
        node = getattr(event.query, "node", None)
        if node is not None and node not in nodes and node < num_nodes:
            nodes.append(node)
        if len(nodes) >= 5:
            break
    if 0 not in nodes:
        nodes.append(0)
    return nodes


def _verify_wal(
    profile: ChaosProfile,
    wal_dir: str,
    acked: list[str],
    probes: dict[int, list[float]],
) -> tuple[dict, dict]:
    """The two durability invariants, evaluated against the WAL on disk.

    (1) Every acked ``mutation_id`` is in the log (checkpoint or tail) —
    the literal "no lost acked mutation".  (2) A fresh service recovered
    from that WAL answers the storm's probe queries within a hair of the
    live (re-frozen) service — recovery reproduces state, not just ids.
    """
    wal = MutationWAL(wal_dir, profile.dataset)
    try:
        missing = sorted(
            mutation_id for mutation_id in acked if not wal.known(mutation_id)
        )
        stats = wal.stats()
    finally:
        wal.close()
    durability = {
        "acked": len(acked),
        "missing_from_wal": missing,
        "wal": stats,
    }
    reference = SimRankService(
        ServiceConfig(
            backend="sling",
            scale=profile.scale,
            seed=profile.seed,
            wal_dir=wal_dir,
            backend_config=BackendConfig(
                epsilon=profile.epsilon,
                seed=profile.seed,
                mc_num_walks=profile.mc_walks,
            ),
        )
    )
    max_diff = 0.0
    compared = 0
    try:
        for node, live_vector in probes.items():
            result = reference.execute(
                SingleSourceQuery(dataset=profile.dataset, node=node)
            )
            if not result.ok:
                max_diff = float("inf")
                continue
            compared += 1
            for live, recovered in zip(live_vector, result.value):
                max_diff = max(max_diff, abs(live - recovered))
    finally:
        reference.close_all()
    # Both sides are re-frozen stores over (what must be) the same graph
    # and seed, so agreement is essentially bitwise; the certified bound
    # ``eps_stale`` would only apply had compaction been skipped.
    tolerance = 1e-6
    recovery_match = {
        "probes": compared,
        "max_abs_diff": max_diff,
        "tolerance": tolerance,
        "ok": compared == len(probes) and max_diff <= tolerance,
    }
    return durability, recovery_match


def run_disk_full(profile: ChaosProfile | None = None) -> dict:
    """Disk-full on WAL append: the mutation must fail with a *retryable*
    typed error, roll back in memory, and leave both the live service and
    the on-disk log consistent — then succeed once space returns."""
    profile = profile or ChaosProfile()
    run_dir = tempfile.mkdtemp(prefix="repro-chaos-df-")
    report: dict = {}
    service = SimRankService(
        ServiceConfig(
            backend="sling",
            scale=profile.scale,
            seed=profile.seed,
            wal_dir=run_dir,
            backend_config=BackendConfig(
                epsilon=profile.epsilon,
                seed=profile.seed,
                mc_num_walks=profile.mc_walks,
            ),
        )
    )
    try:
        dataset = profile.dataset
        service.open_dataset(dataset)
        first = service.execute_control(
            MutateRequest(dataset=dataset, add=((1, 2),), mutation_id="df-1")
        )
        report["first_mutation_ok"] = first.ok
        before = service.execute(SingleSourceQuery(dataset=dataset, node=1))
        wal_bytes = service.wal_for(dataset).stats()["bytes"]
        os.environ[FAIL_AFTER_ENV] = str(wal_bytes + 8)
        try:
            full = service.execute_control(
                MutateRequest(
                    dataset=dataset, add=((2, 3),), mutation_id="df-2"
                )
            )
        finally:
            os.environ.pop(FAIL_AFTER_ENV, None)
        report["disk_full_code"] = (
            full.error.code if full.error else ("ok" if full.ok else "unknown")
        )
        report["disk_full_retryable"] = (
            not full.ok and full.error is not None
            and full.error.code == ERROR_UNAVAILABLE
        )
        after = service.execute(SingleSourceQuery(dataset=dataset, node=1))
        # The failed mutate rolled back: reads still answer, within the
        # staleness the extra apply+rollback layer is certified to cost.
        drift = max(
            abs(a - b) for a, b in zip(before.value, after.value)
        ) if before.ok and after.ok else float("inf")
        report["reads_survive"] = after.ok
        report["rollback_drift"] = drift
        retried = service.execute_control(
            MutateRequest(dataset=dataset, add=((2, 3),), mutation_id="df-2")
        )
        report["retry_after_space_ok"] = retried.ok and not (
            isinstance(retried.value, dict)
            and retried.value.get("deduplicated")
        )
        service.close_all()
        # Recovery must replay exactly the two appends that were acked.
        recovered = SimRankService(
            ServiceConfig(
                backend="sling",
                scale=profile.scale,
                seed=profile.seed,
                wal_dir=run_dir,
                backend_config=BackendConfig(
                    epsilon=profile.epsilon,
                    seed=profile.seed,
                    mc_num_walks=profile.mc_walks,
                ),
            )
        )
        try:
            recovered.open_dataset(dataset)
            wal = recovered.wal_for(dataset)
            report["recovered_ids"] = sorted(
                mutation_id
                for mutation_id in ("df-1", "df-2")
                if wal.known(mutation_id)
            )
        finally:
            recovered.close_all()
        report["ok"] = (
            report["first_mutation_ok"]
            and report["disk_full_retryable"]
            and report["reads_survive"]
            and report["retry_after_space_ok"]
            and report["recovered_ids"] == ["df-1", "df-2"]
        )
    finally:
        service.close_all()
        shutil.rmtree(run_dir, ignore_errors=True)
    return report


def run_slow_shard(profile: ChaosProfile | None = None) -> dict:
    """A slow shard under tight deadlines and a bounded executor: queued
    requests must shed (``deadline_exceeded`` / ``overloaded``), nothing
    may hang, and the worker must stay health-check-responsive (its control
    plane is unaffected by the data-plane stall)."""
    profile = profile or ChaosProfile()
    run_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-slow-"))
    outcomes: dict[str, int] = {}
    max_seconds = 0.0
    lock = threading.Lock()
    os.environ[SLOW_SHARD_ENV] = str(profile.slow_ms)
    try:
        pool = WorkerPool(
            1,
            serve_args=_serve_args(profile, None) + ["--max-pending", "2"],
            run_dir=run_dir,
            health_interval=profile.health_interval,
            ping_timeout=2.0,
            ping_retries=1,
        )
        pool.start()
        try:
            address = pool.worker_address(0)
            with SimRankClient(address=address, timeout=10.0) as opener:
                opener.execute(OpenDatasetRequest(profile.dataset))

            def hammer(offset: int) -> None:
                nonlocal max_seconds
                with SimRankClient(
                    address=address,
                    timeout=10.0,
                    deadline_ms=profile.slow_deadline_ms,
                ) as client:
                    for step in range(4):
                        t0 = time.monotonic()
                        result = client.execute(
                            SingleSourceQuery(
                                dataset=profile.dataset,
                                node=(offset * 4 + step)
                                % _node_count(profile),
                            )
                        )
                        elapsed = time.monotonic() - t0
                        code = "ok" if result.ok else (
                            result.error.code if result.error else "unknown"
                        )
                        with lock:
                            outcomes[code] = outcomes.get(code, 0) + 1
                            max_seconds = max(max_seconds, elapsed)

            threads = [
                threading.Thread(
                    target=hammer, args=(offset,), name=f"repro-chaos-slow-{offset}"
                )
                for offset in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            pool.stop()
    finally:
        os.environ.pop(SLOW_SHARD_ENV, None)
        shutil.rmtree(run_dir, ignore_errors=True)
    shed_codes = {ERROR_DEADLINE_EXCEEDED, ERROR_OVERLOADED, ERROR_TIMEOUT}
    unexpected = sorted(
        code for code in outcomes if code != "ok" and code not in shed_codes
    )
    bound = profile.slow_ms / 1000.0 + profile.slow_deadline_ms / 1000.0 + 5.0
    return {
        "outcomes": dict(sorted(outcomes.items())),
        "shed_observed": any(code in outcomes for code in shed_codes),
        "unexpected_codes": unexpected,
        "max_request_seconds": max_seconds,
        "bounded": max_seconds <= bound,
        "ok": not unexpected
        and any(code in outcomes for code in shed_codes)
        and max_seconds <= bound,
    }


def run_chaos(profile: ChaosProfile | None = None) -> dict:
    """The full fault suite; see the module docstring.  The returned
    report's ``ok`` aggregates every invariant — ``repro chaos`` turns it
    into the exit code, and CI's chaos-smoke job runs exactly this."""
    profile = profile or ChaosProfile()
    report: dict = {"profile": asdict(profile), "scenarios": {}}
    storm = run_storm(profile)
    report["scenarios"]["storm"] = storm
    invariants = {
        "no_lost_mutations": bool(storm.get("no_lost_mutations")),
        "no_hangs": storm["hang_violations"] == 0,
        "typed_errors_only": storm["unexpected_codes"] == [],
        "mutations_all_acked": storm["mutations"]["unacked"] == 0,
        "recovered": (
            not storm["killed"] or storm["recovery_seconds"] is not None
        ),
        "survived_hostile_frames": (
            not profile.hostile_frames
            or bool((storm.get("hostile") or {}).get("survived"))
        ),
    }
    if profile.disk_full:
        disk = run_disk_full(profile)
        report["scenarios"]["disk_full"] = disk
        invariants["disk_full_contained"] = bool(disk.get("ok"))
    if profile.slow_shard:
        slow = run_slow_shard(profile)
        report["scenarios"]["slow_shard"] = slow
        invariants["slow_shard_shed"] = bool(slow.get("ok"))
    report["invariants"] = invariants
    report["ok"] = all(invariants.values())
    return report
