"""Small timing utilities shared by the experiment drivers and benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..exceptions import ParameterError

__all__ = ["Timer", "time_callable", "TimingResult"]


class Timer:
    """A tiny accumulating stopwatch.

    >>> timer = Timer()
    >>> with timer.measure():
    ...     _ = sum(range(1000))
    >>> timer.total_seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.num_measurements = 0

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager adding the elapsed wall-clock time to the total."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.total_seconds += time.perf_counter() - start
            self.num_measurements += 1

    @property
    def average_seconds(self) -> float:
        """Mean elapsed time per measurement (0 when nothing was measured)."""
        if self.num_measurements == 0:
            return 0.0
        return self.total_seconds / self.num_measurements


@dataclass(frozen=True)
class TimingResult:
    """Aggregate of repeated timings of one callable."""

    total_seconds: float
    num_calls: int
    per_call_results: tuple[float, ...] = field(default_factory=tuple)

    @property
    def average_seconds(self) -> float:
        """Mean wall-clock time per call."""
        return self.total_seconds / self.num_calls if self.num_calls else 0.0

    @property
    def average_milliseconds(self) -> float:
        """Mean wall-clock time per call, in milliseconds."""
        return self.average_seconds * 1000.0


def time_callable(
    function: Callable[[], object], *, repeats: int = 1
) -> TimingResult:
    """Call ``function`` ``repeats`` times and aggregate wall-clock timings."""
    if repeats < 1:
        raise ParameterError(f"repeats must be >= 1, got {repeats}")
    timings: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return TimingResult(
        total_seconds=sum(timings),
        num_calls=repeats,
        per_call_results=tuple(timings),
    )
