"""Plain-text rendering of experiment results.

The original paper presents its evaluation as log-scale bar charts; in a
terminal-only reproduction the equivalent artifact is an aligned text table
with one row per (dataset, method) point.  These helpers turn the dataclass
rows produced by :mod:`repro.evaluation.experiments` into such tables, and are
what the benchmark harness prints into ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .experiments import (
    AccuracyRow,
    GroupedErrorRow,
    OutOfCoreRow,
    ParallelRow,
    PreprocessingRow,
    QueryCostRow,
    ScalingRow,
    SpaceRow,
    TopKRow,
)

__all__ = [
    "render_table",
    "render_query_costs",
    "render_preprocessing",
    "render_space",
    "render_accuracy",
    "render_grouped_errors",
    "render_top_k",
    "render_parallel",
    "render_out_of_core",
    "render_scaling",
]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [format_row(list(headers)), "-+-".join("-" * width for width in widths)]
    lines.extend(format_row(row) for row in materialized)
    return "\n".join(lines)


def render_query_costs(rows: Iterable[QueryCostRow], *, title: str) -> str:
    """Figures 1-2: average query time (milliseconds) per dataset and method."""
    body = render_table(
        ["dataset", "method", "queries", "avg ms/query"],
        (
            (row.dataset, row.method, row.num_queries, f"{row.average_milliseconds:.3f}")
            for row in rows
        ),
    )
    return f"{title}\n{body}"


def render_preprocessing(rows: Iterable[PreprocessingRow]) -> str:
    """Figure 3: preprocessing time (seconds)."""
    body = render_table(
        ["dataset", "method", "seconds"],
        ((row.dataset, row.method, f"{row.seconds:.3f}") for row in rows),
    )
    return f"Figure 3: preprocessing cost\n{body}"


def render_space(rows: Iterable[SpaceRow]) -> str:
    """Figure 4: index size (MB)."""
    body = render_table(
        ["dataset", "method", "MB"],
        ((row.dataset, row.method, f"{row.megabytes:.3f}") for row in rows),
    )
    return f"Figure 4: space consumption\n{body}"


def render_accuracy(rows: Iterable[AccuracyRow]) -> str:
    """Figure 5: maximum error per run."""
    body = render_table(
        ["dataset", "method", "run", "max error"],
        (
            (row.dataset, row.method, row.run, f"{row.maximum_error:.6f}")
            for row in rows
        ),
    )
    return f"Figure 5: maximum all-pairs SimRank error\n{body}"


def render_grouped_errors(rows: Iterable[GroupedErrorRow]) -> str:
    """Figure 6: average error per SimRank group."""
    def fmt(value: float) -> str:
        return "n/a" if value != value else f"{value:.6f}"  # NaN check

    body = render_table(
        ["dataset", "method", "S1 [0.1,1]", "S2 [0.01,0.1)", "S3 (<0.01)"],
        (
            (row.dataset, row.method, fmt(row.groups.s1), fmt(row.groups.s2), fmt(row.groups.s3))
            for row in rows
        ),
    )
    return f"Figure 6: average SimRank error per score group\n{body}"


def render_top_k(rows: Iterable[TopKRow]) -> str:
    """Figure 7: top-k precision."""
    body = render_table(
        ["dataset", "method", "k", "precision"],
        ((row.dataset, row.method, row.k, f"{row.precision:.4f}") for row in rows),
    )
    return f"Figure 7: precision of top-k SimRank pairs\n{body}"


def render_parallel(rows: Iterable[ParallelRow]) -> str:
    """Figure 9: preprocessing time vs. worker count."""
    body = render_table(
        ["dataset", "workers", "seconds"],
        ((row.dataset, row.workers, f"{row.seconds:.3f}") for row in rows),
    )
    return f"Figure 9: preprocessing time vs. number of workers\n{body}"


def render_out_of_core(rows: Iterable[OutOfCoreRow]) -> str:
    """Figure 10: preprocessing time vs. memory buffer size."""
    body = render_table(
        ["dataset", "buffer bytes", "spill runs", "seconds"],
        (
            (row.dataset, row.buffer_bytes, row.num_spill_runs, f"{row.seconds:.3f}")
            for row in rows
        ),
    )
    return f"Figure 10: out-of-core preprocessing time vs. buffer size\n{body}"


def render_scaling(rows: Iterable[ScalingRow]) -> str:
    """Table-1 empirical check: SLING cost as ε shrinks."""
    body = render_table(
        ["epsilon", "avg ms/query", "index MB", "avg |H(v)|"],
        (
            (
                f"{row.epsilon:g}",
                f"{row.average_query_milliseconds:.3f}",
                f"{row.index_megabytes:.3f}",
                f"{row.average_set_size:.1f}",
            )
            for row in rows
        ),
    )
    return f"Table 1 (empirical): SLING cost vs. accuracy target\n{body}"
