"""Experiment drivers that regenerate every figure of the paper's evaluation.

Each ``*_experiment`` function reproduces one figure (or table) of Section 7 /
Appendix C on the synthetic dataset stand-ins, and returns a list of plain
dataclass rows that :mod:`repro.evaluation.reporting` renders as text tables.
The benchmark harness under ``benchmarks/`` is a thin wrapper around these
functions, so the same code path backs both ``pytest --benchmark-only`` runs
and ad-hoc exploration from the examples.

Scaling note
------------
The paper's numbers come from a C++ implementation on multi-million-node
graphs; here both the graphs and the Monte-Carlo walk counts are scaled down
(see DESIGN.md).  The *relative* behaviour — which method wins, by what rough
factor, and where the trends cross — is what these drivers reproduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..engine import (
    BackendConfig,
    SimilarityBackend,
    SlingBackend,
    create_backend,
)
from ..graphs import DiGraph, datasets
from ..service import ServiceConfig, SimRankService
from ..sling import SlingParameters, build_with_thread_count, out_of_core_build
from .ground_truth import GroundTruthCache
from .metrics import GroupedErrors, grouped_errors, max_error, top_k_precision
from .timing import time_callable
from .workloads import random_pairs, random_sources

__all__ = [
    "MethodConfig",
    "QueryCostRow",
    "PreprocessingRow",
    "SpaceRow",
    "AccuracyRow",
    "GroupedErrorRow",
    "TopKRow",
    "ParallelRow",
    "OutOfCoreRow",
    "ScalingRow",
    "build_method",
    "single_pair_experiment",
    "single_source_experiment",
    "preprocessing_experiment",
    "space_experiment",
    "accuracy_experiment",
    "grouped_error_experiment",
    "top_k_experiment",
    "parallel_scaling_experiment",
    "out_of_core_experiment",
    "epsilon_scaling_experiment",
    "DEFAULT_SMALL_SCALE",
]

#: Default graph scale for experiments that must stay quick (tests, examples).
DEFAULT_SMALL_SCALE = 0.25

#: Monte-Carlo walk budget used by the experiments.  The paper-exact budget
#: (Section 3.2) is hundreds of thousands of walks per node and does not fit
#: in memory even for the original authors; this scaled-down budget keeps the
#: method representable, as documented in DESIGN.md / EXPERIMENTS.md.
MC_EXPERIMENT_WALKS = 200


@dataclass(frozen=True)
class MethodConfig:
    """Configuration knobs shared by every experiment."""

    c: float = 0.6
    epsilon: float = 0.025
    seed: int = 0
    mc_num_walks: int = MC_EXPERIMENT_WALKS
    sling_reduce_space: bool = False
    sling_enhance_accuracy: bool = False


def _backend_config(config: MethodConfig) -> BackendConfig:
    """Translate the experiment-level knobs into engine-level ones."""
    return BackendConfig(
        c=config.c,
        epsilon=config.epsilon,
        seed=config.seed,
        mc_num_walks=config.mc_num_walks,
        sling_reduce_space=config.sling_reduce_space,
        sling_enhance_accuracy=config.sling_enhance_accuracy,
    )


def build_method(
    name: str, graph: DiGraph, config: MethodConfig = MethodConfig()
) -> SimilarityBackend:
    """Instantiate and build one method by its figure label.

    Dispatch goes through the :mod:`repro.engine` backend registry, so every
    registered backend is reachable; the paper's figure labels (``"SLING"``,
    ``"Linearize"``, ``"MC"``, ``"MC-sqrtc"``) are accepted as aliases.
    Unknown names raise :class:`~repro.exceptions.ParameterError`.
    """
    return create_backend(name, graph, _backend_config(config))


def _service(scale: float, config: MethodConfig) -> SimRankService:
    """A service whose dataset sessions carry cache-disabled engines, so the
    figure timings measure the backend itself rather than the engine's cache.

    The experiment drivers address datasets through service sessions like
    every other consumer; one engine per (dataset, method) is built lazily
    and reused across the queries of that cell.
    """
    return SimRankService(
        ServiceConfig(
            cache_size=0,
            scale=scale,
            seed=config.seed,
            backend_config=_backend_config(config),
        )
    )


# --------------------------------------------------------------------------- #
# Figure 1: single-pair query cost
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryCostRow:
    """One (dataset, method) point of Figures 1-2."""

    dataset: str
    method: str
    num_queries: int
    average_milliseconds: float


def single_pair_experiment(
    dataset_names: Sequence[str],
    *,
    methods: Sequence[str] = ("SLING", "Linearize", "MC"),
    num_queries: int = 100,
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[QueryCostRow]:
    """Figure 1: average single-pair query time per dataset and method."""
    service = _service(scale, config)
    rows: list[QueryCostRow] = []
    for dataset in dataset_names:
        session = service.open_dataset(dataset)
        pairs = random_pairs(session.graph, num_queries, seed=config.seed)
        for method_name in methods:
            engine = session.engine(method_name)
            start = time.perf_counter()
            engine.single_pair_many(pairs, amortize=False)
            elapsed = time.perf_counter() - start
            rows.append(
                QueryCostRow(
                    dataset=dataset,
                    method=method_name,
                    num_queries=len(pairs),
                    average_milliseconds=1000.0 * elapsed / max(1, len(pairs)),
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Figure 2: single-source query cost
# --------------------------------------------------------------------------- #
def single_source_experiment(
    dataset_names: Sequence[str],
    *,
    methods: Sequence[str] = ("SLING", "SLING (Alg. 3)", "Linearize", "MC"),
    num_queries: int = 20,
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[QueryCostRow]:
    """Figure 2: average single-source query time per dataset and method.

    ``"SLING"`` runs Algorithm 6; ``"SLING (Alg. 3)"`` is the naive variant
    that applies the single-pair algorithm once per node.
    """
    service = _service(scale, config)
    rows: list[QueryCostRow] = []
    for dataset in dataset_names:
        session = service.open_dataset(dataset)
        sources = random_sources(session.graph, num_queries, seed=config.seed)
        for method_name in methods:
            # Both SLING variants share one engine (the session caches per
            # resolved backend name), so the index is built once.
            base_name = "SLING" if method_name.startswith("SLING") else method_name
            engine = session.engine(base_name)
            start = time.perf_counter()
            if method_name == "SLING (Alg. 3)":
                backend = engine.backend
                assert isinstance(backend, SlingBackend)
                for source in sources:
                    backend.single_source(source, method="pairwise")
            else:
                for source in sources:
                    engine.single_source(source)
            elapsed = time.perf_counter() - start
            rows.append(
                QueryCostRow(
                    dataset=dataset,
                    method=method_name,
                    num_queries=len(sources),
                    average_milliseconds=1000.0 * elapsed / max(1, len(sources)),
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Figures 3-4: preprocessing cost and space consumption
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PreprocessingRow:
    """One (dataset, method) point of Figure 3."""

    dataset: str
    method: str
    seconds: float


@dataclass(frozen=True)
class SpaceRow:
    """One (dataset, method) point of Figure 4."""

    dataset: str
    method: str
    megabytes: float


def preprocessing_experiment(
    dataset_names: Sequence[str],
    *,
    methods: Sequence[str] = ("SLING", "Linearize", "MC"),
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[PreprocessingRow]:
    """Figure 3: preprocessing (index construction) time of each method."""
    service = _service(scale, config)
    rows: list[PreprocessingRow] = []
    for dataset in dataset_names:
        # Timing index construction itself, so build fresh backends on the
        # session's graph instead of reusing its lazily-built engines.
        graph = service.open_dataset(dataset).graph
        for method_name in methods:
            timing = time_callable(lambda: build_method(method_name, graph, config))
            rows.append(
                PreprocessingRow(
                    dataset=dataset,
                    method=method_name,
                    seconds=timing.average_seconds,
                )
            )
    return rows


def space_experiment(
    dataset_names: Sequence[str],
    *,
    methods: Sequence[str] = ("SLING", "Linearize", "MC"),
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[SpaceRow]:
    """Figure 4: index size of each method."""
    service = _service(scale, config)
    rows: list[SpaceRow] = []
    for dataset in dataset_names:
        session = service.open_dataset(dataset)
        for method_name in methods:
            method = session.engine(method_name).backend
            rows.append(
                SpaceRow(
                    dataset=dataset,
                    method=method_name,
                    megabytes=method.index_size_bytes() / (1024.0 * 1024.0),
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Figures 5-7: accuracy against the power-method ground truth
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AccuracyRow:
    """Maximum all-pairs error of one method in one run (Figure 5)."""

    dataset: str
    method: str
    run: int
    maximum_error: float


@dataclass(frozen=True)
class GroupedErrorRow:
    """Average error per SimRank group (Figure 6)."""

    dataset: str
    method: str
    groups: GroupedErrors


@dataclass(frozen=True)
class TopKRow:
    """Top-k precision of one method for one k (Figure 7)."""

    dataset: str
    method: str
    k: int
    precision: float


def _all_pairs_matrix(method: SimilarityBackend) -> np.ndarray:
    return method.all_pairs()


def accuracy_experiment(
    dataset_names: Sequence[str] = datasets.SMALL_DATASETS,
    *,
    methods: Sequence[str] = ("SLING", "Linearize", "MC"),
    num_runs: int = 3,
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
    cache: GroundTruthCache | None = None,
) -> list[AccuracyRow]:
    """Figure 5: maximum all-pairs error over repeated index builds."""
    service = _service(scale, config)
    cache = cache or GroundTruthCache()
    rows: list[AccuracyRow] = []
    for dataset in dataset_names:
        # Each run rebuilds with a different seed, so the session supplies
        # the graph while the per-run backends are built ad hoc.
        graph = service.open_dataset(dataset).graph
        truth = cache.get(graph, c=config.c)
        for run in range(num_runs):
            run_config = MethodConfig(
                c=config.c,
                epsilon=config.epsilon,
                seed=config.seed + run,
                mc_num_walks=config.mc_num_walks,
                sling_reduce_space=config.sling_reduce_space,
                sling_enhance_accuracy=config.sling_enhance_accuracy,
            )
            for method_name in methods:
                method = build_method(method_name, graph, run_config)
                estimated = _all_pairs_matrix(method)
                rows.append(
                    AccuracyRow(
                        dataset=dataset,
                        method=method_name,
                        run=run,
                        maximum_error=max_error(estimated, truth),
                    )
                )
    return rows


def grouped_error_experiment(
    dataset_names: Sequence[str] = datasets.SMALL_DATASETS,
    *,
    methods: Sequence[str] = ("SLING", "Linearize", "MC"),
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
    cache: GroundTruthCache | None = None,
) -> list[GroupedErrorRow]:
    """Figure 6: average error within the S1 / S2 / S3 score groups."""
    service = _service(scale, config)
    cache = cache or GroundTruthCache()
    rows: list[GroupedErrorRow] = []
    for dataset in dataset_names:
        session = service.open_dataset(dataset)
        truth = cache.get(session.graph, c=config.c)
        for method_name in methods:
            method = session.engine(method_name).backend
            estimated = _all_pairs_matrix(method)
            rows.append(
                GroupedErrorRow(
                    dataset=dataset,
                    method=method_name,
                    groups=grouped_errors(estimated, truth),
                )
            )
    return rows


def top_k_experiment(
    dataset_names: Sequence[str] = datasets.SMALL_DATASETS,
    *,
    methods: Sequence[str] = ("SLING", "Linearize", "MC"),
    k_values: Sequence[int] = (400, 800, 1200, 1600, 2000),
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
    cache: GroundTruthCache | None = None,
) -> list[TopKRow]:
    """Figure 7: precision of the top-k node pairs returned by each method."""
    service = _service(scale, config)
    cache = cache or GroundTruthCache()
    rows: list[TopKRow] = []
    for dataset in dataset_names:
        session = service.open_dataset(dataset)
        truth = cache.get(session.graph, c=config.c)
        for method_name in methods:
            method = session.engine(method_name).backend
            estimated = _all_pairs_matrix(method)
            for k in k_values:
                rows.append(
                    TopKRow(
                        dataset=dataset,
                        method=method_name,
                        k=k,
                        precision=top_k_precision(estimated, truth, k),
                    )
                )
    return rows


# --------------------------------------------------------------------------- #
# Figure 9: parallel preprocessing scaling
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParallelRow:
    """Preprocessing time with a given number of worker processes (Figure 9)."""

    dataset: str
    workers: int
    seconds: float


def parallel_scaling_experiment(
    dataset_names: Sequence[str] = ("Google",),
    *,
    worker_counts: Sequence[int] = (1, 2, 4),
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[ParallelRow]:
    """Figure 9: preprocessing time as the number of workers grows."""
    service = _service(scale, config)
    rows: list[ParallelRow] = []
    for dataset in dataset_names:
        graph = service.open_dataset(dataset).graph
        params = SlingParameters.from_accuracy_target(
            num_nodes=graph.num_nodes, c=config.c, epsilon=config.epsilon
        )
        for workers in worker_counts:
            seconds = build_with_thread_count(
                graph, params, workers, seed=config.seed
            )
            rows.append(ParallelRow(dataset=dataset, workers=workers, seconds=seconds))
    return rows


# --------------------------------------------------------------------------- #
# Figure 10: out-of-core construction
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OutOfCoreRow:
    """Preprocessing time with a bounded memory buffer (Figure 10)."""

    dataset: str
    buffer_bytes: int
    seconds: float
    num_spill_runs: int


def out_of_core_experiment(
    work_directory,
    dataset_names: Sequence[str] = ("Google",),
    *,
    buffer_sizes: Sequence[int] = (64 * 1024, 256 * 1024, 1024 * 1024),
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[OutOfCoreRow]:
    """Figure 10: out-of-core preprocessing time vs. memory buffer size.

    The paper varies the buffer from 256 MB to "all"; the scaled-down graphs
    here produce far fewer records, so proportionally smaller buffers are used
    to exercise the same spill/merge machinery.
    """
    from pathlib import Path

    service = _service(scale, config)
    rows: list[OutOfCoreRow] = []
    for dataset in dataset_names:
        graph = service.open_dataset(dataset).graph
        params = SlingParameters.from_accuracy_target(
            num_nodes=graph.num_nodes, c=config.c, epsilon=config.epsilon
        )
        for buffer_bytes in buffer_sizes:
            target = Path(work_directory) / f"{dataset}_{buffer_bytes}"
            report = out_of_core_build(
                graph, params, target, buffer_bytes=buffer_bytes, seed=config.seed
            )
            rows.append(
                OutOfCoreRow(
                    dataset=dataset,
                    buffer_bytes=buffer_bytes,
                    seconds=report.elapsed_seconds,
                    num_spill_runs=report.num_spill_runs,
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Table 1: empirical scaling of query time with 1/epsilon
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScalingRow:
    """Query cost and index size of SLING at one accuracy level."""

    epsilon: float
    average_query_milliseconds: float
    index_megabytes: float
    average_set_size: float


def epsilon_scaling_experiment(
    dataset: str = "GrQc",
    *,
    epsilons: Sequence[float] = (0.1, 0.05, 0.025),
    num_queries: int = 100,
    scale: float = DEFAULT_SMALL_SCALE,
    config: MethodConfig = MethodConfig(),
) -> list[ScalingRow]:
    """Empirical check of the Table-1 bounds: query time and space vs. 1/ε."""
    graph = _service(scale, config).open_dataset(dataset).graph
    pairs = random_pairs(graph, num_queries, seed=config.seed)
    rows: list[ScalingRow] = []
    for epsilon in epsilons:
        scaled_config = MethodConfig(
            c=config.c,
            epsilon=epsilon,
            seed=config.seed,
            mc_num_walks=config.mc_num_walks,
        )
        # Each ε needs its own index: attach the already-loaded graph to a
        # fresh service session configured at that accuracy.
        session = _service(scale, scaled_config).open_dataset(dataset, graph=graph)
        engine = session.engine("sling")
        backend = engine.backend
        assert isinstance(backend, SlingBackend)
        start = time.perf_counter()
        engine.single_pair_many(pairs, amortize=False)
        elapsed = time.perf_counter() - start
        rows.append(
            ScalingRow(
                epsilon=epsilon,
                average_query_milliseconds=1000.0 * elapsed / max(1, len(pairs)),
                index_megabytes=backend.index_size_bytes() / (1024.0 * 1024.0),
                average_set_size=backend.index.average_set_size(),
            )
        )
    return rows
