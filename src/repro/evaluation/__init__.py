"""Evaluation harness: ground truth, metrics, workloads, experiment drivers."""

from .ground_truth import GroundTruthCache, ground_truth_matrix
from .metrics import (
    GroupedErrors,
    grouped_errors,
    max_error,
    mean_error,
    top_k_pairs,
    top_k_precision,
)
from .timing import Timer, TimingResult, time_callable
from .workloads import random_pairs, random_sources
from . import ablations, experiments, reporting

__all__ = [
    "GroundTruthCache",
    "ground_truth_matrix",
    "GroupedErrors",
    "grouped_errors",
    "max_error",
    "mean_error",
    "top_k_pairs",
    "top_k_precision",
    "Timer",
    "TimingResult",
    "time_callable",
    "random_pairs",
    "random_sources",
    "ablations",
    "experiments",
    "reporting",
]
