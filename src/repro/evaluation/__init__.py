"""Evaluation harness: ground truth, metrics, workloads, experiment drivers."""

from .ground_truth import GroundTruthCache, ground_truth_matrix
from .metrics import (
    GroupedErrors,
    grouped_errors,
    max_error,
    mean_error,
    top_k_pairs,
    top_k_precision,
)
from .timing import Timer, TimingResult, time_callable
from .traffic import (
    TrafficEvent,
    TrafficPattern,
    events_to_jsonl,
    generate_traffic,
    replay_events,
    summarize_events,
    traffic_sources,
)
from .workloads import random_pairs, random_sources
from . import ablations, experiments, reporting

__all__ = [
    "GroundTruthCache",
    "ground_truth_matrix",
    "GroupedErrors",
    "grouped_errors",
    "max_error",
    "mean_error",
    "top_k_pairs",
    "top_k_precision",
    "Timer",
    "TimingResult",
    "time_callable",
    "random_pairs",
    "random_sources",
    "TrafficPattern",
    "TrafficEvent",
    "generate_traffic",
    "events_to_jsonl",
    "summarize_events",
    "traffic_sources",
    "replay_events",
    "ablations",
    "experiments",
    "reporting",
]
