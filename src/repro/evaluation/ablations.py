"""Ablation studies for the design choices highlighted in DESIGN.md.

The paper motivates each of its Section-5 optimizations with an argument but
only reports end-to-end numbers; these drivers isolate the individual choices
so their effect can be measured directly:

* **Algorithm 1 vs. Algorithm 4** — fixed vs. adaptive sample budgets for the
  correction factors (Section 5.1).  The adaptive estimator should use far
  fewer √c-walk pairs on nodes whose in-neighbourhood similarity µ is small,
  without hurting accuracy.
* **Space reduction on/off** — dropping step-1/2 hitting probabilities
  (Section 5.2) should shrink the index materially while the query error stays
  within ε (the recomputed values are exact).
* **Accuracy enhancement on/off** — the marked-HP expansion (Section 5.3)
  should reduce the observed error at a bounded query-time cost.
* **MC vs. MC-√c** — replacing truncated reverse walks with √c-walks
  (Section 4.1) should improve accuracy per stored byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..baselines import MonteCarloIndex, SqrtCMonteCarloIndex
from ..graphs import datasets
from ..sling import SlingIndex, SlingParameters, SqrtCWalker, estimate_correction_factor
from .ground_truth import GroundTruthCache
from .metrics import max_error
from .workloads import random_pairs

__all__ = [
    "CorrectionSamplerRow",
    "OptimizationRow",
    "MonteCarloVariantRow",
    "correction_sampler_ablation",
    "optimization_ablation",
    "monte_carlo_variant_ablation",
]


# --------------------------------------------------------------------------- #
# Algorithm 1 vs Algorithm 4
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CorrectionSamplerRow:
    """Cost and accuracy of one correction-factor estimator variant."""

    dataset: str
    estimator: str
    total_samples: int
    seconds: float
    max_error_vs_exact: float


def correction_sampler_ablation(
    dataset: str = "GrQc",
    *,
    scale: float = 0.2,
    epsilon_d: float = 0.01,
    seed: int = 0,
    cache: GroundTruthCache | None = None,
) -> list[CorrectionSamplerRow]:
    """Compare Algorithm 1 (fixed budget) against Algorithm 4 (adaptive)."""
    cache = cache or GroundTruthCache()
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    truth = cache.get(graph)
    from ..sling import exact_correction_factors

    exact = exact_correction_factors(graph, truth, 0.6)
    params = SlingParameters.from_accuracy_target(num_nodes=graph.num_nodes)
    rows: list[CorrectionSamplerRow] = []
    for adaptive, label in ((False, "Algorithm 1 (fixed)"), (True, "Algorithm 4 (adaptive)")):
        walker = SqrtCWalker(graph, 0.6, seed=seed)
        start = time.perf_counter()
        estimates = [
            estimate_correction_factor(
                walker, node, epsilon_d, params.delta_d, adaptive=adaptive
            )
            for node in graph.nodes()
        ]
        elapsed = time.perf_counter() - start
        values = np.array([estimate.value for estimate in estimates])
        rows.append(
            CorrectionSamplerRow(
                dataset=dataset,
                estimator=label,
                total_samples=sum(estimate.num_samples for estimate in estimates),
                seconds=elapsed,
                max_error_vs_exact=float(np.abs(values - exact).max()),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Space reduction / accuracy enhancement
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OptimizationRow:
    """Effect of one optimization flag combination on the SLING index."""

    dataset: str
    variant: str
    index_megabytes: float
    max_error: float
    average_query_milliseconds: float


def optimization_ablation(
    dataset: str = "GrQc",
    *,
    scale: float = 0.2,
    epsilon: float = 0.05,
    num_queries: int = 200,
    seed: int = 0,
    cache: GroundTruthCache | None = None,
) -> list[OptimizationRow]:
    """Measure size, error, and query time for every optimization combination."""
    cache = cache or GroundTruthCache()
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    truth = cache.get(graph)
    pairs = random_pairs(graph, num_queries, seed=seed)
    variants = [
        ("baseline", False, False),
        ("space reduction (5.2)", True, False),
        ("accuracy enhancement (5.3)", False, True),
        ("both optimizations", True, True),
    ]
    rows: list[OptimizationRow] = []
    for label, reduce_space, enhance in variants:
        index = SlingIndex(
            graph,
            epsilon=epsilon,
            seed=seed,
            reduce_space=reduce_space,
            enhance_accuracy=enhance,
        ).build()
        start = time.perf_counter()
        for node_u, node_v in pairs:
            index.single_pair(node_u, node_v)
        elapsed = time.perf_counter() - start
        rows.append(
            OptimizationRow(
                dataset=dataset,
                variant=label,
                index_megabytes=index.index_size_bytes() / (1024.0 * 1024.0),
                max_error=max_error(index.all_pairs(), truth),
                average_query_milliseconds=1000.0 * elapsed / max(1, len(pairs)),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# MC vs MC-sqrt(c)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MonteCarloVariantRow:
    """Accuracy per stored byte of the two Monte Carlo variants."""

    dataset: str
    variant: str
    num_walks: int
    index_megabytes: float
    max_error: float


def monte_carlo_variant_ablation(
    dataset: str = "GrQc",
    *,
    scale: float = 0.2,
    num_walks: int = 400,
    seed: int = 0,
    cache: GroundTruthCache | None = None,
) -> list[MonteCarloVariantRow]:
    """Compare the truncated-walk MC index against the √c-walk variant."""
    cache = cache or GroundTruthCache()
    graph = datasets.load_dataset(dataset, scale=scale, seed=seed)
    truth = cache.get(graph)
    methods = [
        ("MC (truncated walks)", MonteCarloIndex(graph, num_walks=num_walks, seed=seed)),
        ("MC (sqrt(c)-walks)", SqrtCMonteCarloIndex(graph, num_walks=num_walks, seed=seed)),
    ]
    rows: list[MonteCarloVariantRow] = []
    for label, method in methods:
        method.build()
        rows.append(
            MonteCarloVariantRow(
                dataset=dataset,
                variant=label,
                num_walks=num_walks,
                index_megabytes=method.index_size_bytes() / (1024.0 * 1024.0),
                max_error=max_error(method.all_pairs(), truth),
            )
        )
    return rows
