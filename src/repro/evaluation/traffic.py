"""Realistic traffic modelling: seeded, drifting, bursty request streams.

The SkyServer Traffic Report (see PAPERS.md) documents what query traffic on
a long-running public scientific service actually looks like: a heavily
Zipf-skewed popularity distribution over targets, hot spots that *drift* as
new data releases shift attention, arrival bursts from crawlers and
classrooms, and a persistent uniform tail of one-off queries.  A uniformly
random workload (``random_pairs`` / ``random_sources``) has none of those
properties — and caching looks useless against it, because no source is ever
queried twice.

This module generates workloads with all four properties, deterministically
from a seed, as **wire-ready request streams**: every event wraps a typed
:class:`~repro.service.queries.Query` and knows its protocol-v2 envelope
form, so the *same* stream can drive a :class:`~repro.engine.QueryEngine`
directly, a :class:`~repro.service.SimRankService`, ``repro batch`` (via
:func:`events_to_jsonl`), or the socket router — which is what lets the
cache benchmarks claim engine-level and end-to-end numbers came from
identical traffic.

The model, per query:

1. pick a dataset uniformly from the configured sessions;
2. pick a kind from the configured ``top_k`` / ``single_source`` /
   ``single_pair`` mix;
3. pick the target source through a Zipf(``zipf_exponent``) draw over a
   permuted *source region* of the graph, where

   * the rank→node permutation shifts every ``drift_every`` queries
     (temporal drift: today's hot set is not last month's),
   * during a burst phase (``burst_every`` / ``burst_length``) draws
     concentrate on the ``hot_set_size`` currently-hottest ranks with
     probability ``burst_hot_bias``,
   * with probability ``tail_fraction`` the draw is uniform over the whole
     region instead (the long tail of one-off queries);

4. single-pair queries either target hot sources (``pair_mode="hot"``,
   building cross-kind admission pressure) or walk a cursor through nodes
   *outside* the source region (``pair_mode="cold"``, keeping pair answers
   cache-independent — what the benchmark's ``identical_values`` guard
   needs, because sling pair and vector reads agree only within the
   accuracy target, not bitwise).

Everything is driven by one ``random.Random(seed)``, so a
:class:`TrafficPattern` plus a node-count mapping fully determines the
stream.
"""

from __future__ import annotations

import bisect
import json
import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterable, Mapping

from ..exceptions import ParameterError
from ..service.control import ControlRequest, MutateRequest
from ..service.queries import (
    Query,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)
from ..service.wire import PROTOCOL_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..service import QueryResult, SimRankService

__all__ = [
    "TrafficPattern",
    "TrafficEvent",
    "CHAOS_TRAFFIC_PROFILES",
    "chaos_pattern_overrides",
    "generate_traffic",
    "events_to_jsonl",
    "summarize_events",
    "traffic_sources",
    "replay_events",
]

#: Smallest graph a pattern can target: two nodes inside the source region
#: for vector queries plus (in ``cold`` pair mode) two outside it for pairs.
_MIN_NODES = 4


@dataclass(frozen=True)
class TrafficPattern:
    """Every knob of the workload model, validated at construction.

    The defaults describe a moderately skewed, slowly drifting, lightly
    bursty read-mostly service; benchmarks override them explicitly so the
    recorded JSON names the exact pattern measured.
    """

    #: Total events in the stream (across all datasets).
    num_queries: int = 1000
    #: Seed of the single ``random.Random`` driving every choice.
    seed: int = 0
    #: Zipf exponent of the source-popularity distribution (> 0; higher is
    #: more skewed; ~1.0–1.4 matches observed service traffic).
    zipf_exponent: float = 1.2
    #: How many of the hottest ranks a burst concentrates on.
    hot_set_size: int = 32
    #: Queries between hot-set drifts; 0 disables drift.
    drift_every: int = 200
    #: How many positions the rank→node permutation rotates per drift.
    drift_step: int = 1
    #: Period of the burst cycle in queries; 0 disables bursts.
    burst_every: int = 160
    #: Leading slice of each cycle that is the burst phase.
    burst_length: int = 32
    #: Probability a burst-phase draw is pinned to the hot set.
    burst_hot_bias: float = 0.85
    #: Probability any draw ignores popularity and lands uniformly in the
    #: source region — the long tail of one-off queries.
    tail_fraction: float = 0.10
    #: Fraction of events that are ``top_k`` queries.
    top_k_fraction: float = 0.65
    #: Fraction of events that are ``single_source`` queries; the remainder
    #: after ``top_k_fraction`` + ``single_source_fraction`` is
    #: ``single_pair`` traffic.
    single_source_fraction: float = 0.15
    #: ``k`` used by every generated top-k query.
    k: int = 10
    #: Fraction of each graph's nodes that form the source region popularity
    #: is distributed over (bounded below by 2 nodes).
    source_region: float = 0.5
    #: Hard cap on the source-region size in nodes; ``None`` means no cap.
    #: Benchmarks set this so "large cache" can mean "covers every source".
    source_span: int | None = None
    #: ``"hot"``: pairs target popular sources (builds cross-kind admission
    #: pressure); ``"cold"``: pairs walk nodes outside the source region so
    #: their answers never touch the cache.
    pair_mode: str = "hot"
    #: Probability an event is a ``mutate`` control request instead of a
    #: query (0.0 — the default — generates pure read streams, and consumes
    #: no extra randomness, so pre-mutation streams are reproduced exactly).
    #: Mutation events alternate between adding fresh random edges and
    #: removing edges the stream itself added, so the graph stays near its
    #: original shape over a long storm.
    mutation_fraction: float = 0.0
    #: Edges per mutation event.
    mutation_batch: int = 1
    #: Every Nth mutation event also requests a re-freeze (compaction back
    #: to a frozen store); 0 never re-freezes mid-stream.
    mutation_refreeze_every: int = 0
    #: End-to-end deadline stamped on every emitted envelope, in
    #: milliseconds; ``None`` (the default) emits byte-identical streams to
    #: pre-deadline versions at the same seed.
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise ParameterError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.num_queries < 0:
            raise ParameterError(
                f"num_queries must be >= 0, got {self.num_queries}"
            )
        if self.zipf_exponent <= 0:
            raise ParameterError(
                f"zipf_exponent must be > 0, got {self.zipf_exponent}"
            )
        if self.hot_set_size < 1:
            raise ParameterError(
                f"hot_set_size must be >= 1, got {self.hot_set_size}"
            )
        for name in ("drift_every", "drift_step", "burst_every", "burst_length"):
            if getattr(self, name) < 0:
                raise ParameterError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        for name in ("burst_hot_bias", "tail_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ParameterError(f"{name} must be in [0, 1], got {value}")
        if self.top_k_fraction < 0 or self.single_source_fraction < 0:
            raise ParameterError("query-kind fractions must be >= 0")
        if self.top_k_fraction + self.single_source_fraction > 1.0 + 1e-12:
            raise ParameterError(
                "top_k_fraction + single_source_fraction must be <= 1, got "
                f"{self.top_k_fraction + self.single_source_fraction}"
            )
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if not 0.0 < self.source_region <= 1.0:
            raise ParameterError(
                f"source_region must be in (0, 1], got {self.source_region}"
            )
        if self.source_span is not None and self.source_span < 2:
            raise ParameterError(
                f"source_span must be >= 2, got {self.source_span}"
            )
        if self.pair_mode not in ("hot", "cold"):
            raise ParameterError(
                f"pair_mode must be 'hot' or 'cold', got {self.pair_mode!r}"
            )
        if not 0.0 <= self.mutation_fraction <= 1.0:
            raise ParameterError(
                f"mutation_fraction must be in [0, 1], got "
                f"{self.mutation_fraction}"
            )
        if self.mutation_batch < 1:
            raise ParameterError(
                f"mutation_batch must be >= 1, got {self.mutation_batch}"
            )
        if self.mutation_refreeze_every < 0:
            raise ParameterError(
                "mutation_refreeze_every must be >= 0, got "
                f"{self.mutation_refreeze_every}"
            )

    @property
    def single_pair_fraction(self) -> float:
        """The remainder of the kind mix: pair traffic."""
        return max(
            0.0, 1.0 - self.top_k_fraction - self.single_source_fraction
        )

    def as_dict(self) -> dict:
        """Plain-dict form for JSON output (benchmark records embed it)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


@dataclass(frozen=True)
class TrafficEvent:
    """One generated request: its stream position, phase, and typed query.

    With ``mutation_fraction > 0`` some events wrap a
    :class:`~repro.service.control.MutateRequest` instead of a query; both
    planes share the envelope form, so the stream stays one JSONL pipe.
    """

    #: Position in the stream; doubles as the wire envelope's ``id``.
    index: int
    #: ``"burst"`` or ``"steady"`` — which arrival phase produced it.
    phase: str
    query: Query | ControlRequest
    #: End-to-end deadline budget stamped on the envelope; ``None`` omits
    #: the key entirely, keeping deadline-free streams byte-identical.
    deadline_ms: float | None = None

    @property
    def kind(self) -> str:
        """The wrapped query's kind."""
        return self.query.kind

    @property
    def dataset(self) -> str:
        """The wrapped query's dataset."""
        return self.query.dataset

    def to_wire(self) -> dict:
        """Protocol-v2 envelope: ready for ``repro batch`` / serve / router."""
        payload = {"v": PROTOCOL_VERSION, "id": self.index, **self.query.to_wire()}
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload


class _DatasetState:
    """Per-dataset derived state: source region, permutation, Zipf CDF."""

    def __init__(
        self, name: str, num_nodes: int, pattern: TrafficPattern,
        rng: random.Random,
    ) -> None:
        if num_nodes < _MIN_NODES:
            raise ParameterError(
                f"dataset {name!r} has {num_nodes} nodes; traffic generation "
                f"needs at least {_MIN_NODES}"
            )
        self.name = name
        self.num_nodes = num_nodes
        span = max(2, int(num_nodes * pattern.source_region))
        if pattern.source_span is not None:
            span = min(span, pattern.source_span)
        span = min(span, num_nodes)
        if pattern.pair_mode == "cold" and num_nodes - span < 2:
            raise ParameterError(
                f"dataset {name!r}: pair_mode='cold' needs >= 2 nodes outside "
                f"the source region, but span {span} of {num_nodes} nodes "
                "leaves fewer — shrink source_region or set source_span"
            )
        self.span = span
        #: Rank -> node mapping; popularity rank r targets ``perm[(r + drift)
        #: % span]``, so drift rotates *which nodes* are hot while the
        #: popularity shape stays fixed.
        self.perm = list(range(span))
        rng.shuffle(self.perm)
        #: Cumulative Zipf weights over ranks, for bisect-based sampling.
        total = 0.0
        cdf: list[float] = []
        for rank in range(span):
            total += 1.0 / float(rank + 1) ** pattern.zipf_exponent
            cdf.append(total)
        self.zipf_cdf = cdf
        self.zipf_total = total
        #: Cursor for ``cold`` pair traffic, walking the off-region nodes.
        self.pair_cursor = 0
        #: Edges added by this stream's own mutation events and not yet
        #: removed by one — the pool removals draw from, so a long storm
        #: oscillates around the original graph instead of densifying it.
        self.workload_edges: list[tuple[int, int]] = []
        #: Mutation events generated so far (drives periodic re-freeze).
        self.mutation_count = 0


def generate_traffic(
    node_counts: Mapping[str, int], pattern: TrafficPattern | None = None
) -> list[TrafficEvent]:
    """The full request stream for ``pattern`` over the given datasets.

    ``node_counts`` maps dataset name -> node count (the generator needs no
    graphs, only sizes, so streams can be produced without loading anything).
    The result is fully determined by the arguments.
    """
    pattern = pattern or TrafficPattern()
    if not node_counts:
        raise ParameterError("node_counts must name at least one dataset")
    rng = random.Random(pattern.seed)
    states = [
        _DatasetState(name, count, pattern, rng)
        for name, count in node_counts.items()
    ]
    events: list[TrafficEvent] = []
    for index in range(pattern.num_queries):
        state = states[rng.randrange(len(states))]
        in_burst = (
            pattern.burst_every > 0
            and pattern.burst_length > 0
            and index % pattern.burst_every < pattern.burst_length
        )
        drift = (
            (index // pattern.drift_every) * pattern.drift_step
            if pattern.drift_every > 0
            else 0
        )
        if (
            pattern.mutation_fraction > 0.0
            and rng.random() < pattern.mutation_fraction
        ):
            events.append(
                TrafficEvent(
                    index=index,
                    phase="burst" if in_burst else "steady",
                    query=_draw_mutation(state, pattern, rng),
                    deadline_ms=pattern.deadline_ms,
                )
            )
            continue
        roll = rng.random()
        if roll < pattern.top_k_fraction:
            query: Query = TopKQuery(
                dataset=state.name,
                node=_draw_source(state, pattern, rng, in_burst, drift),
                k=pattern.k,
            )
        elif roll < pattern.top_k_fraction + pattern.single_source_fraction:
            query = SingleSourceQuery(
                dataset=state.name,
                node=_draw_source(state, pattern, rng, in_burst, drift),
            )
        else:
            node_u, node_v = _draw_pair(state, pattern, rng, in_burst, drift)
            query = SinglePairQuery(
                dataset=state.name, node_u=node_u, node_v=node_v
            )
        events.append(
            TrafficEvent(
                index=index,
                phase="burst" if in_burst else "steady",
                query=query,
                deadline_ms=pattern.deadline_ms,
            )
        )
    return events


#: Named traffic shapes for fault drills: each maps to the
#: :class:`TrafficPattern` overrides that produce the stress in question.
#: ``repro workload --chaos-profile NAME`` and the fault-injection harness
#: resolve these through :func:`chaos_pattern_overrides`, so a profile name
#: in a bug report pins the exact stream that provoked it.
CHAOS_TRAFFIC_PROFILES: dict[str, dict] = {
    # Write-heavy: every third event mutates, periodically re-freezing — the
    # stream that exercises WAL append, checkpointing, and replay hardest.
    "mutation-storm": {
        "mutation_fraction": 0.34,
        "mutation_batch": 2,
        "mutation_refreeze_every": 8,
    },
    # Read bursts with tight deadlines: saturates queues so overload
    # shedding and deadline propagation are what keep latency bounded.
    "deadline-storm": {
        "burst_every": 40,
        "burst_length": 24,
        "top_k_fraction": 0.3,
        "single_source_fraction": 0.6,
        "deadline_ms": 250.0,
    },
    # The mixed drill: moderate writes plus deadlines, the closest shape to
    # the chaos harness's default end-to-end run.
    "mixed-faults": {
        "mutation_fraction": 0.15,
        "mutation_refreeze_every": 10,
        "deadline_ms": 1000.0,
    },
}


def chaos_pattern_overrides(profile: str) -> dict:
    """The :class:`TrafficPattern` overrides named by ``profile``.

    Raises :class:`~repro.exceptions.ParameterError` for unknown names,
    listing the valid ones (the CLI surfaces this message directly).
    """
    try:
        return dict(CHAOS_TRAFFIC_PROFILES[profile])
    except KeyError:
        known = ", ".join(sorted(CHAOS_TRAFFIC_PROFILES))
        raise ParameterError(
            f"unknown chaos profile {profile!r}; expected one of: {known}"
        ) from None


def _draw_source(
    state: _DatasetState,
    pattern: TrafficPattern,
    rng: random.Random,
    in_burst: bool,
    drift: int,
) -> int:
    """One source node: tail, burst-hot, or Zipf rank, mapped through the
    drifted permutation."""
    if rng.random() < pattern.tail_fraction:
        rank = rng.randrange(state.span)
    elif in_burst and rng.random() < pattern.burst_hot_bias:
        rank = rng.randrange(min(pattern.hot_set_size, state.span))
    else:
        point = rng.random() * state.zipf_total
        rank = bisect.bisect_left(state.zipf_cdf, point)
        rank = min(rank, state.span - 1)
    return state.perm[(rank + drift) % state.span]


def _draw_mutation(
    state: _DatasetState, pattern: TrafficPattern, rng: random.Random
) -> MutateRequest:
    """One mutation event: add fresh random edges, or remove edges this
    stream previously added (alternating by coin flip; additions are forced
    while the stream-owned pool is empty)."""
    state.mutation_count += 1
    refreeze = (
        pattern.mutation_refreeze_every > 0
        and state.mutation_count % pattern.mutation_refreeze_every == 0
    )
    removing = bool(state.workload_edges) and rng.random() < 0.5
    if removing:
        removed = []
        for _ in range(min(pattern.mutation_batch, len(state.workload_edges))):
            removed.append(
                state.workload_edges.pop(
                    rng.randrange(len(state.workload_edges))
                )
            )
        return MutateRequest(
            dataset=state.name, remove=tuple(removed), refreeze=refreeze
        )
    added = []
    for _ in range(pattern.mutation_batch):
        node_u = rng.randrange(state.num_nodes)
        node_v = rng.randrange(state.num_nodes)
        if node_v == node_u:
            node_v = (node_v + 1) % state.num_nodes
        edge = (node_u, node_v)
        added.append(edge)
        state.workload_edges.append(edge)
    return MutateRequest(
        dataset=state.name, add=tuple(added), refreeze=refreeze
    )


def _draw_pair(
    state: _DatasetState,
    pattern: TrafficPattern,
    rng: random.Random,
    in_burst: bool,
    drift: int,
) -> tuple[int, int]:
    """One node pair, per the pattern's pair mode.

    ``cold`` pairs stride the off-region nodes two at a time so consecutive
    pairs share nothing; ``hot`` pairs put a popular source on one side, so
    standalone-pair pressure accumulates on exactly the nodes the vector
    queries keep hot.
    """
    if pattern.pair_mode == "cold":
        cold = state.num_nodes - state.span
        offset = (2 * state.pair_cursor) % max(1, cold - 1)
        state.pair_cursor += 1
        node_u = state.span + offset
        return node_u, node_u + 1
    node_u = _draw_source(state, pattern, rng, in_burst, drift)
    node_v = rng.randrange(state.num_nodes)
    if node_v == node_u:
        node_v = (node_v + 1) % state.num_nodes
    return node_u, node_v


def events_to_jsonl(events: Iterable[TrafficEvent]) -> str:
    """The stream as protocol-v2 JSONL — pipe it into ``repro batch`` or a
    serve socket verbatim."""
    return "\n".join(
        json.dumps(event.to_wire(), separators=(",", ":")) for event in events
    )


def summarize_events(events: Iterable[TrafficEvent]) -> dict:
    """Shape of a stream: counts by kind, dataset, and phase, plus the
    distinct-source count (an upper bound on useful cache size)."""
    by_kind: dict[str, int] = {}
    by_dataset: dict[str, int] = {}
    by_phase: dict[str, int] = {}
    sources: set[tuple[str, int]] = set()
    total = 0
    for event in events:
        total += 1
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        by_dataset[event.dataset] = by_dataset.get(event.dataset, 0) + 1
        by_phase[event.phase] = by_phase.get(event.phase, 0) + 1
        node = getattr(event.query, "node", None)
        if node is not None:
            sources.add((event.dataset, node))
    return {
        "num_queries": total,
        "by_kind": dict(sorted(by_kind.items())),
        "by_dataset": dict(sorted(by_dataset.items())),
        "by_phase": dict(sorted(by_phase.items())),
        "distinct_sources": len(sources),
    }


def traffic_sources(events: Iterable[TrafficEvent]) -> dict[str, list[int]]:
    """Distinct vector-query sources per dataset, sorted — the node set a
    warm sweep must touch to pre-load every cacheable vector."""
    per_dataset: dict[str, set[int]] = {}
    for event in events:
        node = getattr(event.query, "node", None)
        if node is not None:
            per_dataset.setdefault(event.dataset, set()).add(node)
    return {name: sorted(nodes) for name, nodes in sorted(per_dataset.items())}


def replay_events(
    service: "SimRankService",
    events: Iterable[TrafficEvent],
    *,
    backend: str | None = None,
) -> list["QueryResult"]:
    """Drive every event through ``service`` in order; one envelope per
    event, in stream order.  Failures come back as error envelopes (the
    service boundary contract), so callers can assert ``all(r.ok ...)``.
    Mutation events dispatch through the control plane (``backend`` applies
    only to queries)."""
    return [
        service.execute_request(event.query, backend=backend)
        for event in events
    ]
