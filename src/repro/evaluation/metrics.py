"""Accuracy metrics used in the paper's evaluation (Figures 5-7).

* maximum and mean absolute error of an all-pairs score matrix against the
  ground truth,
* per-group average error, where the groups partition the ground-truth scores
  into S1 = [0.1, 1], S2 = [0.01, 0.1) and S3 = (0, 0.01) — Figure 6,
* top-k precision of the highest-scoring node pairs — Figure 7.

All metrics ignore the diagonal (identical node pairs), exactly as the paper
does for the top-k experiment, and because every method returns the trivial
value 1 there.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "GroupedErrors",
    "max_error",
    "mean_error",
    "grouped_errors",
    "top_k_pairs",
    "top_k_precision",
    "SIMRANK_GROUPS",
]

#: The three score groups of Figure 6 (lower bound inclusive, upper exclusive,
#: except S1 which includes 1.0).
SIMRANK_GROUPS: dict[str, tuple[float, float]] = {
    "S1": (0.1, 1.0000001),
    "S2": (0.01, 0.1),
    "S3": (0.0, 0.01),
}


def _validate_matrices(estimated: np.ndarray, truth: np.ndarray) -> None:
    if estimated.shape != truth.shape or estimated.ndim != 2:
        raise ParameterError(
            f"matrices must have identical 2-D shapes, got {estimated.shape} "
            f"and {truth.shape}"
        )
    if estimated.shape[0] != estimated.shape[1]:
        raise ParameterError(f"matrices must be square, got {estimated.shape}")


def _off_diagonal_mask(n: int) -> np.ndarray:
    mask = np.ones((n, n), dtype=bool)
    np.fill_diagonal(mask, False)
    return mask


def max_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Maximum absolute error over all non-identical node pairs (Figure 5)."""
    _validate_matrices(estimated, truth)
    mask = _off_diagonal_mask(truth.shape[0])
    if not mask.any():
        return 0.0
    return float(np.abs(estimated - truth)[mask].max())


def mean_error(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error over all non-identical node pairs."""
    _validate_matrices(estimated, truth)
    mask = _off_diagonal_mask(truth.shape[0])
    if not mask.any():
        return 0.0
    return float(np.abs(estimated - truth)[mask].mean())


@dataclass(frozen=True)
class GroupedErrors:
    """Average error per SimRank group (the three bars of Figure 6)."""

    s1: float
    s2: float
    s3: float
    s1_count: int
    s2_count: int
    s3_count: int

    def as_dict(self) -> dict[str, float]:
        """Group label to average error (NaN groups omitted)."""
        values = {"S1": self.s1, "S2": self.s2, "S3": self.s3}
        return {key: value for key, value in values.items() if not np.isnan(value)}


def grouped_errors(estimated: np.ndarray, truth: np.ndarray) -> GroupedErrors:
    """Average absolute error within each ground-truth score group (Figure 6)."""
    _validate_matrices(estimated, truth)
    mask = _off_diagonal_mask(truth.shape[0])
    errors = np.abs(estimated - truth)
    results: dict[str, tuple[float, int]] = {}
    for group, (low, high) in SIMRANK_GROUPS.items():
        selection = mask & (truth >= low) & (truth < high)
        count = int(selection.sum())
        average = float(errors[selection].mean()) if count else float("nan")
        results[group] = (average, count)
    return GroupedErrors(
        s1=results["S1"][0],
        s2=results["S2"][0],
        s3=results["S3"][0],
        s1_count=results["S1"][1],
        s2_count=results["S2"][1],
        s3_count=results["S3"][1],
    )


def top_k_pairs(scores: np.ndarray, k: int) -> set[tuple[int, int]]:
    """The ``k`` unordered node pairs with the highest scores.

    Pairs of identical nodes are excluded; the pair ``(u, v)`` is reported
    with ``u < v`` and the matrix is treated as symmetric by taking the
    maximum of the two orientations (SimRank itself is symmetric, but sampled
    estimates may not be exactly so).
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
        raise ParameterError(f"scores must be a square matrix, got {scores.shape}")
    n = scores.shape[0]
    symmetric = np.maximum(scores, scores.T)
    upper_i, upper_j = np.triu_indices(n, k=1)
    values = symmetric[upper_i, upper_j]
    k = min(k, values.shape[0])
    if k == 0:
        return set()
    order = np.argpartition(-values, k - 1)[:k]
    return {(int(upper_i[idx]), int(upper_j[idx])) for idx in order}


def top_k_precision(estimated: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Fraction of the estimated top-k pairs that are true top-k pairs (Fig. 7)."""
    _validate_matrices(estimated, truth)
    estimated_top = top_k_pairs(estimated, k)
    truth_top = top_k_pairs(truth, k)
    if not estimated_top:
        return 1.0 if not truth_top else 0.0
    return len(estimated_top & truth_top) / len(estimated_top)
