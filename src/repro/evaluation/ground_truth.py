"""Ground-truth SimRank scores via the power method, with caching.

Figures 5-7 of the paper compare every method against the power method run
for 50 iterations (worst-case error below 1e-11).  Computing that matrix is
the single most expensive step of the accuracy experiments, so this module
caches it per graph (keyed by object identity) and optionally on disk.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..baselines.power import GROUND_TRUTH_ITERATIONS, simrank_matrix
from ..graphs import DiGraph

__all__ = ["GroundTruthCache", "ground_truth_matrix"]


def ground_truth_matrix(
    graph: DiGraph, *, c: float = 0.6, num_iterations: int = GROUND_TRUTH_ITERATIONS
) -> np.ndarray:
    """The paper's ground truth: the power method run for 50 iterations."""
    return simrank_matrix(graph, c=c, num_iterations=num_iterations)


class GroundTruthCache:
    """Cache of ground-truth matrices, in memory and optionally on disk."""

    def __init__(self, cache_directory: str | Path | None = None) -> None:
        self._memory: dict[tuple[int, float, int], np.ndarray] = {}
        self._directory = Path(cache_directory) if cache_directory else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)

    def _key(self, graph: DiGraph, c: float, num_iterations: int) -> tuple[int, float, int]:
        return (id(graph), float(c), int(num_iterations))

    def _disk_path(self, graph: DiGraph, c: float, num_iterations: int) -> Path | None:
        if self._directory is None:
            return None
        stamp = f"n{graph.num_nodes}_m{graph.num_edges}_c{c:g}_t{num_iterations}"
        return self._directory / f"ground_truth_{stamp}.npy"

    def get(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        num_iterations: int = GROUND_TRUTH_ITERATIONS,
    ) -> np.ndarray:
        """Return the ground-truth matrix, computing and caching it if needed."""
        key = self._key(graph, c, num_iterations)
        if key in self._memory:
            return self._memory[key]
        disk_path = self._disk_path(graph, c, num_iterations)
        if disk_path is not None and disk_path.exists():
            matrix = np.load(disk_path)
        else:
            matrix = ground_truth_matrix(graph, c=c, num_iterations=num_iterations)
            if disk_path is not None:
                np.save(disk_path, matrix)
        self._memory[key] = matrix
        return matrix

    def clear(self) -> None:
        """Drop every in-memory entry (disk files are left untouched)."""
        self._memory.clear()
