"""Query workload generators.

The paper evaluates query performance on 1000 random single-pair queries and
500 random single-source queries per dataset (Section 7.2).  These helpers
generate such workloads deterministically from a seed so that every method is
measured on exactly the same queries.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..graphs import DiGraph

__all__ = ["random_pairs", "random_sources", "PAPER_PAIR_QUERIES", "PAPER_SOURCE_QUERIES"]

#: Workload sizes used in Section 7.2 of the paper.
PAPER_PAIR_QUERIES = 1000
PAPER_SOURCE_QUERIES = 500


def random_pairs(
    graph: DiGraph, count: int, *, seed: int | None = None, distinct: bool = True
) -> list[tuple[int, int]]:
    """``count`` uniformly random node pairs (distinct nodes by default)."""
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if graph.num_nodes < 2 and distinct and count > 0:
        raise ParameterError("cannot draw distinct pairs from a graph with < 2 nodes")
    rng = np.random.default_rng(seed)
    pairs: list[tuple[int, int]] = []
    while len(pairs) < count:
        u = int(rng.integers(0, graph.num_nodes))
        v = int(rng.integers(0, graph.num_nodes))
        if distinct and u == v:
            continue
        pairs.append((u, v))
    return pairs


def random_sources(
    graph: DiGraph, count: int, *, seed: int | None = None
) -> list[int]:
    """``count`` uniformly random source nodes (with replacement)."""
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    if graph.num_nodes == 0 and count > 0:
        raise ParameterError("cannot draw sources from an empty graph")
    rng = np.random.default_rng(seed)
    return [int(node) for node in rng.integers(0, graph.num_nodes, size=count)]
