#!/usr/bin/env python3
"""Replay a realistic traffic stream and watch the cache earn its keep.

The :mod:`repro.evaluation.traffic` generator models what production
query streams actually look like — Zipf-skewed source popularity, a hot
set that drifts over time, periodic bursts, and a mix of ``top_k`` /
``single_source`` / ``single_pair`` requests.  This example generates one
such stream (the same one ``repro workload`` emits) and replays it twice
through an in-process :class:`~repro.service.SimRankService`:

1. with caching disabled (``cache_size=0``) — every vector recomputed;
2. with a vector cache (``cache_size=64``) — the skewed hot set hits.

It then reads the per-kind hit rates and hit/miss latency percentiles the
statistics surface exposes, so you can see *where* the speedup comes
from, not just that it happened.

Run with:

    PYTHONPATH=src python examples/traffic_replay.py [--queries 600]
"""

from __future__ import annotations

import argparse

from repro.evaluation.traffic import (
    TrafficPattern,
    generate_traffic,
    replay_events,
    summarize_events,
)
from repro.graphs import generators
from repro.service import ServiceConfig, SimRankService


def build_stream(num_nodes: int, queries: int, seed: int):
    pattern = TrafficPattern(
        num_queries=queries,
        seed=seed,
        zipf_exponent=1.2,
        hot_set_size=12,
        drift_every=150,
        drift_step=2,
        burst_every=120,
        burst_length=24,
        pair_mode="hot",
    )
    return generate_traffic({"community": num_nodes}, pattern)


def replay(graph, events, cache_size: int) -> dict:
    service = SimRankService(
        ServiceConfig(backend="power", cache_size=cache_size)
    )
    service.open_dataset("community", graph=graph)
    results = replay_events(service, events)
    assert all(result.ok for result in results)
    return service.statistics()["totals"]


def describe(label: str, totals: dict) -> None:
    print(f"--- {label} ---")
    print(f"queries: {totals['total_queries']}, "
          f"hit rate: {totals['cache_hit_rate']:.2f}")
    for kind, rate in sorted(totals["hit_rate_by_kind"].items()):
        print(f"  hit rate ({kind}): {rate:.2f}")
    by_outcome = totals["latency_percentiles_by_outcome"]
    for outcome in ("hit", "miss"):
        stats = by_outcome.get(outcome)
        if stats and stats["count"]:
            print(f"  {outcome} latency: p50 {stats['p50']*1e3:.3f} ms, "
                  f"p99 {stats['p99']*1e3:.3f} ms  "
                  f"({stats['count']} queries)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--communities", type=int, default=4,
                        help="communities in the generated graph (default: 4)")
    parser.add_argument("--community-size", type=int, default=12,
                        help="nodes per community (default: 12)")
    parser.add_argument("--queries", type=int, default=600,
                        help="traffic events to replay (default: 600)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = generators.two_level_community(
        args.communities, args.community_size, seed=args.seed
    )
    events = build_stream(graph.num_nodes, args.queries, args.seed)
    summary = summarize_events(events)
    print(f"stream: {summary['num_queries']} queries over "
          f"{graph.num_nodes} nodes, kinds {summary['by_kind']}, "
          f"{summary['by_phase']['burst']} burst-phase events")

    cold = replay(graph, events, cache_size=0)
    warm = replay(graph, events, cache_size=64)
    describe("cache disabled", cold)
    describe("cache_size=64", warm)

    speedup = (cold["total_seconds"] / warm["total_seconds"]
               if warm["total_seconds"] else float("inf"))
    print(f"\nsame stream, same answers, {speedup:.1f}x less compute time "
          f"with the cache on")
    print("traffic replay complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
