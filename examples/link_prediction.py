#!/usr/bin/env python3
"""Link prediction on a social-style graph with SimRank scores.

One of the classic SimRank applications cited in the paper's introduction is
link prediction in social networks (Liben-Nowell & Kleinberg): rank
non-adjacent node pairs by similarity and predict that the highest-scoring
pairs will connect next.

The experiment below follows the standard protocol:

1. synthesise a "friendship" graph with planted communities,
2. hide a random sample of its edges (the test set),
3. score all candidate pairs with SimRank (via a SLING index built on the
   remaining graph) and with a common-neighbour baseline,
4. report how many hidden edges appear among the top-ranked predictions.

Run with:

    python examples/link_prediction.py [--communities 4] [--community-size 25]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.graphs import DiGraph, generators
from repro.sling import SlingIndex


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--communities", type=int, default=4)
    parser.add_argument("--community-size", type=int, default=25)
    parser.add_argument("--holdout-fraction", type=float, default=0.1)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=5)
    return parser.parse_args()


def split_edges(graph: DiGraph, holdout_fraction: float, seed: int):
    """Remove a random sample of undirected edges; return (train graph, test set)."""
    rng = np.random.default_rng(seed)
    undirected = sorted({(min(u, v), max(u, v)) for u, v in graph.edges() if u != v})
    num_test = max(1, int(len(undirected) * holdout_fraction))
    test_positions = set(
        rng.choice(len(undirected), size=num_test, replace=False).tolist()
    )
    test_pairs = {pair for position, pair in enumerate(undirected) if position in test_positions}
    train_edges = [
        (u, v)
        for u, v in graph.edges()
        if (min(u, v), max(u, v)) not in test_pairs
    ]
    return DiGraph(graph.num_nodes, train_edges), test_pairs


def common_neighbor_scores(graph: DiGraph, candidates) -> dict[tuple[int, int], float]:
    """Baseline: number of shared (in-)neighbours."""
    neighbor_sets = [set(graph.in_neighbors(node).tolist()) for node in graph.nodes()]
    return {
        (u, v): float(len(neighbor_sets[u] & neighbor_sets[v])) for u, v in candidates
    }


def hits_at_k(ranking, test_pairs, k: int) -> int:
    return sum(1 for pair in ranking[:k] if pair in test_pairs)


def main() -> None:
    args = parse_args()

    print("Building the friendship graph ...")
    graph = generators.two_level_community(
        args.communities,
        args.community_size,
        intra_edges_per_node=5,
        inter_edges_per_community=3,
        seed=args.seed,
    )
    print(f"  {graph!r}")

    print(f"Hiding {args.holdout_fraction:.0%} of the edges as the test set ...")
    train_graph, test_pairs = split_edges(graph, args.holdout_fraction, args.seed)
    print(f"  training graph: {train_graph!r}")
    print(f"  hidden (test) edges: {len(test_pairs)}")

    print(f"Building the SLING index on the training graph (epsilon = {args.epsilon}) ...")
    index = SlingIndex(train_graph, epsilon=args.epsilon, seed=args.seed).build()
    print(f"  {index.build_statistics.summary()}")

    print("Scoring all non-adjacent candidate pairs ...")
    existing = {(min(u, v), max(u, v)) for u, v in train_graph.edges()}
    candidates = [
        (u, v)
        for u in train_graph.nodes()
        for v in range(u + 1, train_graph.num_nodes)
        if (u, v) not in existing
    ]
    simrank_scores: dict[tuple[int, int], float] = {}
    for source in train_graph.nodes():
        row = index.single_source(source)
        for u, v in candidates:
            if u == source:
                simrank_scores[(u, v)] = float(row[v])
    baseline_scores = common_neighbor_scores(train_graph, candidates)

    k = max(10, len(test_pairs))
    simrank_ranking = sorted(candidates, key=lambda pair: -simrank_scores[pair])
    baseline_ranking = sorted(candidates, key=lambda pair: -baseline_scores[pair])

    simrank_hits = hits_at_k(simrank_ranking, test_pairs, k)
    baseline_hits = hits_at_k(baseline_ranking, test_pairs, k)
    random_expectation = k * len(test_pairs) / max(1, len(candidates))

    print(f"Results (hits among the top-{k} predictions):")
    print(f"  SimRank (SLING):        {simrank_hits:4d}")
    print(f"  common neighbours:      {baseline_hits:4d}")
    print(f"  random guessing (exp.): {random_expectation:6.1f}")


if __name__ == "__main__":
    main()
