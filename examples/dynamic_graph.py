#!/usr/bin/env python3
"""Dynamic graphs: mutate a live index while queries keep flowing.

The dynamic-graph subsystem keeps a SLING index serving while the graph
underneath it changes.  Edge deltas repair only the affected hitting-set
entries and correction factors; every answer in the staleness window
carries the monotonic ``index_version`` it was computed against and a
certified bound ``ε_stale`` on how far it can drift from a from-scratch
rebuild; a ``refreeze`` compacts the outstanding deltas back into a
frozen store with bitwise rebuild-parity answers.

This example generates one mutation-bearing traffic stream (the same one
``repro workload --mutations`` emits) and replays it through a
:class:`~repro.service.SimRankClient` over an in-process sling-backed
service, checking along the way that

* every mutation ack advances ``index_version`` and certifies a bound,
* every query answered after a mutation echoes the acked version (the
  stream is serial, so a stale cached vector would break the echo),
* a final ``refreeze`` returns ``ε_stale`` to 0.0.

Run with:

    PYTHONPATH=src python examples/dynamic_graph.py [--queries 300]
"""

from __future__ import annotations

import argparse

from repro.engine import BackendConfig
from repro.evaluation.traffic import (
    TrafficPattern,
    generate_traffic,
    summarize_events,
)
from repro.graphs import generators
from repro.service import ServiceConfig, SimRankClient, SimRankService


def build_stream(num_nodes: int, queries: int, seed: int):
    pattern = TrafficPattern(
        num_queries=queries,
        seed=seed,
        zipf_exponent=1.2,
        hot_set_size=10,
        top_k_fraction=0.4,
        single_source_fraction=0.3,
        mutation_fraction=0.1,
        mutation_batch=2,
        mutation_refreeze_every=5,
    )
    return generate_traffic({"community": num_nodes}, pattern)


def replay(client: SimRankClient, events) -> dict:
    """Stream the events through the client; returns replay facts."""
    expected_version = None
    echo_ok = True
    acks = []
    queries = 0
    for event in events:
        result = client.execute(event.query)
        assert result.ok, f"{event.kind} failed: {result.error.message}"
        if event.kind == "mutate":
            ack = result.value
            acks.append(ack)
            expected_version = ack["index_version"]
            flavor = "refreeze" if ack["refrozen"] else "repair"
            print(
                f"  [{flavor:8s}] version {ack['index_version']:>2} "
                f"+{ack['edges_added']}/-{ack['edges_removed']} edges, "
                f"{ack['affected_targets']} targets repaired, "
                f"{ack['invalidated_vectors']} vectors invalidated, "
                f"eps_stale={ack['epsilon_stale']:.3f}"
            )
        else:
            queries += 1
            if expected_version is not None:
                # Serial stream: each answer must echo the acked version.
                echo_ok = echo_ok and result.index_version == expected_version
    return {
        "acks": acks,
        "queries": queries,
        "echo_ok": echo_ok,
        "final_version": expected_version,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--communities", type=int, default=3,
                        help="communities in the generated graph (default: 3)")
    parser.add_argument("--community-size", type=int, default=10,
                        help="nodes per community (default: 10)")
    parser.add_argument("--queries", type=int, default=300,
                        help="traffic events to stream (default: 300)")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = generators.two_level_community(
        args.communities, args.community_size, seed=args.seed
    )
    events = build_stream(graph.num_nodes, args.queries, args.seed)
    summary = summarize_events(events)
    print(f"stream: {summary['num_queries']} events "
          f"({summary['by_kind'].get('mutate', 0)} mutations) over "
          f"{graph.num_nodes} nodes, kinds {summary['by_kind']}")

    service = SimRankService(
        ServiceConfig(
            backend="sling",
            backend_config=BackendConfig(epsilon=args.epsilon, seed=args.seed),
        )
    )
    service.open_dataset("community", graph=graph)
    with SimRankClient.in_process(service) as client:
        facts = replay(client, events)

        repairs = [a for a in facts["acks"] if not a["refrozen"]]
        refreezes = [a for a in facts["acks"] if a["refrozen"]]
        print(f"\n{facts['queries']} queries interleaved with "
              f"{len(repairs)} incremental repairs and "
              f"{len(refreezes)} re-freezes")
        versions = [a["index_version"] for a in facts["acks"]]
        assert versions == sorted(versions), "index_version must be monotonic"
        print(f"index_version advanced monotonically to "
              f"{facts['final_version']}")
        assert facts["echo_ok"], "a query echoed the wrong index_version!"
        print("every post-mutation answer echoed the acked index_version")

        # Compact whatever deltas are still outstanding: the certificate
        # returns to 0.0 and answers regain bitwise rebuild parity.
        final = client.mutate("community", refreeze=True)
        print(f"final refreeze: version {final['index_version']}, "
              f"eps_stale={final['epsilon_stale']:.3f}")
        assert final["epsilon_stale"] == 0.0

        totals = client.stats()["totals"]
        described = client.describe("community")
        print(f"stats: {totals['total_queries']} queries, "
              f"{totals['cache_hits']} cache hits, "
              f"{totals['cache_invalidations']} vectors invalidated, "
              f"serving index_version {described['index_version']}")
    print("dynamic graph tour complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
