#!/usr/bin/env python3
"""Quickstart: answer SimRank queries through the service API.

The script builds a small planted-community graph, registers it as a named
dataset session on a :class:`~repro.service.SimRankService` (the planner picks
a backend — the SLING index, with the paper's default decay factor), and walks
through the typed query kinds: single-pair, single-source, and top-k — plus
the all-pairs sweep.  Every answer arrives as a :class:`QueryResult` envelope
carrying the value, the chosen backend, and the observed latency.  It finishes
by checking the answers against the exact power-method scores so you can see
the ε guarantee in action.

Run with:

    python examples/quickstart.py [--nodes-per-community 20] [--epsilon 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import PowerMethod
from repro.engine import BackendConfig
from repro.graphs import generators
from repro.service import (
    AllPairsQuery,
    ServiceConfig,
    SimRankService,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
)

DATASET = "quickstart"


def run(service: SimRankService, query):
    """Execute one query, surfacing a structured error envelope if it fails."""
    result = service.execute(query)
    if not result.ok:
        raise SystemExit(
            f"query failed [{result.error.code}]: {result.error.message}"
        )
    return result


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--communities", type=int, default=3)
    parser.add_argument("--nodes-per-community", type=int, default=20)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("1. Building a planted-community graph ...")
    graph = generators.two_level_community(
        args.communities, args.nodes_per_community, seed=args.seed
    )
    print(f"   {graph!r}")

    print(f"2. Opening a dataset session on the service (epsilon = {args.epsilon}) ...")
    service = SimRankService(
        ServiceConfig(
            backend_config=BackendConfig(epsilon=args.epsilon, seed=args.seed)
        )
    )
    session = service.open_dataset(DATASET, graph=graph)
    engine = session.engine()  # builds via the planner
    print(f"   planner chose backend {engine.plan.backend!r}: {engine.plan.reason}")
    print(f"   {engine.backend.index.build_statistics.summary()}")
    print(f"   index size: {engine.backend.index_size_bytes() / 1024:.1f} KiB")

    print("3. Single-pair queries (same community vs. different community):")
    same = run(service, SinglePairQuery(DATASET, 0, 1))
    cross = run(service, SinglePairQuery(DATASET, 0, args.nodes_per_community + 1))
    print(f"   s(0, 1)                      = {same.value:.4f}")
    print(f"   s(0, {args.nodes_per_community + 1})                     = {cross.value:.4f}")
    print(f"   (each answered by {same.backend!r} in {1000 * same.seconds:.2f} ms)")

    print("4. Single-source query from node 0 (Algorithm 6):")
    scores = np.asarray(run(service, SingleSourceQuery(DATASET, 0)).value)
    print(f"   mean similarity inside community 0:  "
          f"{scores[1:args.nodes_per_community].mean():.4f}")
    print(f"   mean similarity outside community 0: "
          f"{scores[args.nodes_per_community:].mean():.4f}")

    print("5. Top-5 most similar nodes to node 0:")
    top = run(service, TopKQuery(DATASET, node=0, k=5))
    for entry in top.value:
        print(f"   #{entry['rank']}: node {entry['node']:3d}  score {entry['score']:.4f}")
    print(f"   (cache hit: {top.cache_hit} — the single-source vector was reused)")

    print("6. Verifying the accuracy guarantee against the power method ...")
    truth = PowerMethod(graph, num_iterations=40).build().all_pairs()
    estimated = np.asarray(run(service, AllPairsQuery(DATASET)).value)
    observed_error = float(np.abs(estimated - truth).max())
    print(f"   maximum observed error: {observed_error:.5f} "
          f"(guaranteed bound: {args.epsilon})")
    if observed_error > args.epsilon:
        raise SystemExit("accuracy guarantee violated — this should not happen")
    print("   the guarantee holds.")
    print(f"   engine statistics: {engine.statistics.summary()}")
    print(f"   open sessions: {service.list_datasets()}")


if __name__ == "__main__":
    main()
