#!/usr/bin/env python3
"""Quickstart: answer SimRank queries through the unified query engine.

The script builds a small planted-community graph, lets the engine planner
pick a backend (the SLING index, with the paper's default decay factor), and
walks through the three query primitives: single-pair, single-source, and
top-k — plus the engine's batched all-pairs sweep.  It finishes by checking
the answers against the exact power-method scores so you can see the ε
guarantee in action.

Run with:

    python examples/quickstart.py [--nodes-per-community 20] [--epsilon 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import PowerMethod
from repro.engine import BackendConfig, create_engine
from repro.graphs import generators


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--communities", type=int, default=3)
    parser.add_argument("--nodes-per-community", type=int, default=20)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("1. Building a planted-community graph ...")
    graph = generators.two_level_community(
        args.communities, args.nodes_per_community, seed=args.seed
    )
    print(f"   {graph!r}")

    print(f"2. Creating a query engine (epsilon = {args.epsilon}) ...")
    engine = create_engine(
        graph, config=BackendConfig(epsilon=args.epsilon, seed=args.seed)
    )
    print(f"   planner chose backend {engine.plan.backend!r}: {engine.plan.reason}")
    print(f"   {engine.backend.index.build_statistics.summary()}")
    print(f"   index size: {engine.backend.index_size_bytes() / 1024:.1f} KiB")

    print("3. Single-pair queries (same community vs. different community):")
    same_community = engine.single_pair(0, 1)
    cross_community = engine.single_pair(0, args.nodes_per_community + 1)
    print(f"   s(0, 1)                      = {same_community:.4f}")
    print(f"   s(0, {args.nodes_per_community + 1})                     = {cross_community:.4f}")

    print("4. Single-source query from node 0 (Algorithm 6):")
    scores = engine.single_source(0)
    print(f"   mean similarity inside community 0:  "
          f"{scores[1:args.nodes_per_community].mean():.4f}")
    print(f"   mean similarity outside community 0: "
          f"{scores[args.nodes_per_community:].mean():.4f}")

    print("5. Top-5 most similar nodes to node 0:")
    for rank, (node, score) in enumerate(engine.top_k(0, 5), start=1):
        print(f"   #{rank}: node {node:3d}  score {score:.4f}")

    print("6. Verifying the accuracy guarantee against the power method ...")
    truth = PowerMethod(graph, num_iterations=40).build().all_pairs()
    estimated = np.vstack(engine.single_source_many(graph.nodes()))
    observed_error = float(np.abs(estimated - truth).max())
    print(f"   maximum observed error: {observed_error:.5f} "
          f"(guaranteed bound: {args.epsilon})")
    if observed_error > args.epsilon:
        raise SystemExit("accuracy guarantee violated — this should not happen")
    print("   the guarantee holds.")
    print(f"   engine statistics: {engine.statistics.summary()}")


if __name__ == "__main__":
    main()
