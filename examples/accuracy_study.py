#!/usr/bin/env python3
"""Accuracy study: SLING vs. Linearize vs. MC against exact SimRank.

A compact, runnable version of the paper's Figures 5-7 on one dataset
stand-in: it builds every method, computes all-pairs SimRank scores, and
prints the maximum error, the per-group average error, and the top-k
precision of each method relative to the power-method ground truth.

Run with:

    python examples/accuracy_study.py [--dataset GrQc] [--scale 0.25]
"""

from __future__ import annotations

import argparse

from repro.evaluation import (
    GroundTruthCache,
    grouped_errors,
    max_error,
    top_k_precision,
)
from repro.evaluation.experiments import MethodConfig, build_method
from repro.graphs import datasets


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="GrQc", choices=datasets.dataset_names())
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--epsilon", type=float, default=0.025)
    parser.add_argument("--top-k", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = MethodConfig(epsilon=args.epsilon, seed=args.seed, mc_num_walks=400)

    print(f"Loading the {args.dataset} stand-in (scale = {args.scale}) ...")
    graph = datasets.load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"  {graph!r}")

    print("Computing the power-method ground truth (50 iterations) ...")
    truth = GroundTruthCache().get(graph, c=config.c)

    header = (
        f"{'method':<12} {'max error':>12} {'avg err S1':>12} "
        f"{'avg err S2':>12} {'avg err S3':>12} {'prec@'+str(args.top_k):>10}"
    )
    print()
    print(header)
    print("-" * len(header))
    for method_name in ("SLING", "Linearize", "MC"):
        method = build_method(method_name, graph, config)
        estimated = method.all_pairs()
        groups = grouped_errors(estimated, truth).as_dict()
        print(
            f"{method_name:<12} "
            f"{max_error(estimated, truth):>12.6f} "
            f"{groups.get('S1', float('nan')):>12.6f} "
            f"{groups.get('S2', float('nan')):>12.6f} "
            f"{groups.get('S3', float('nan')):>12.6f} "
            f"{top_k_precision(estimated, truth, args.top_k):>10.3f}"
        )
    print()
    print(
        f"SLING's stipulated error bound is epsilon = {args.epsilon}; its observed "
        "maximum error should sit comfortably below that, while Linearize and MC "
        "carry no comparable guarantee (Section 7.2 of the paper)."
    )


if __name__ == "__main__":
    main()
