#!/usr/bin/env python3
"""Quickstart: socket serving and the sharded multi-process router.

Two tours of the network layer (`repro.service.net`):

1. **socket transport** — ``SimRankClient.connect_socket()`` spawns a
   private ``repro serve --unix`` child and speaks protocol v2 to it over
   a Unix-domain socket; a *second* client then attaches to the same
   server by address (``SimRankClient(address=...)``) and reads the warm
   state the first one created, which is what distinguishes a socket
   server from the per-client stdio pipe.
2. **router** — a :class:`~repro.service.WorkerPool` of two real worker
   processes fronted by a :class:`~repro.service.Router`: each dataset is
   owned by one worker (consistent hashing, here overridden with pins),
   queries relay to the owner, and control-plane requests (``stats``,
   ``list_datasets``) fan out to every worker and merge — including
   latency percentiles recomputed across the fleet.

Run with:

    PYTHONPATH=src python examples/serving_quickstart.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro.service import Address, Router, SimRankClient, WorkerPool


def socket_tour(scale: float, epsilon: float, seed: int) -> None:
    print("=== socket transport (owned `repro serve --unix` child) ===")
    with SimRankClient.connect_socket(
        scale=scale, epsilon=epsilon, seed=seed
    ) as owner:
        address = owner.address
        print(f"serving on {address}")
        print(f"ping: {owner.ping()}")
        opened = owner.open_dataset("GrQc")
        print(f"open_dataset: {opened['num_nodes']} nodes")
        print(f"s(1, 2) = {owner.single_pair('GrQc', 1, 2):.6f}")

        # A second client attaches to the same address and sees the same
        # warm service: the session the first client opened answers it.
        guest = SimRankClient(address=address)
        assert guest.list_datasets() == ["GrQc"]
        top = guest.top_k("GrQc", 3, k=5)
        print("top-5 for node 3 (second client, same server): "
              + ", ".join(f"{e['node']}:{e['score']:.4f}" for e in top))
        guest.close()  # disconnects; the owner's server keeps running
        print(f"still serving after guest left: {owner.ping()['pong']}")
    print("owner closed -> child reaped, socket unlinked\n")


def router_tour(scale: float, epsilon: float, seed: int) -> None:
    print("=== router (2 worker processes, per-dataset sharding) ===")
    serve_args = [
        "--scale", str(scale), "--epsilon", str(epsilon), "--seed", str(seed),
    ]
    pool = WorkerPool(2, serve_args=serve_args)
    pool.start()
    router = Router(
        pool,
        address=Address(family="tcp", host="127.0.0.1", port=0),
        pins={"GrQc": 0, "AS": 1},  # force the shards apart for the demo
    )
    router.start()
    try:
        client = SimRankClient(address=str(router.address))
        for name in ("GrQc", "AS"):
            client.open_dataset(name)
            print(f"{name} -> worker {router.shard_for(name)}")
        print(f"s_GrQc(1, 2) = {client.single_pair('GrQc', 1, 2):.6f}")
        print(f"s_AS(1, 2)   = {client.single_pair('AS', 1, 2):.6f}")

        # list/stats fan out to every worker and merge into one view.
        print(f"datasets across the fleet: {client.list_datasets()}")
        totals = client.stats()["totals"]
        print(f"merged stats: {totals['total_queries']} queries, "
              f"p99(single_pair) = "
              f"{totals['latency_percentiles']['single_pair']['p99']*1e3:.2f} ms")

        # One shutdown request stops the router and every worker.
        print(f"shutdown: {client.shutdown()}")
        client.close()
        router.wait(timeout=60)
        print(f"worker restarts while serving: {pool.restart_counts()}")
    finally:
        router.stop()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset stand-in scale (default: 0.05)")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    socket_tour(args.scale, args.epsilon, args.seed)
    router_tour(args.scale, args.epsilon, args.seed)
    print("\nserving tour complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
