#!/usr/bin/env python3
"""Quickstart: drive the service through the `SimRankClient` library.

One client surface, two transports.  The script runs the same tour twice:

1. **in-process** — the client wraps a :class:`~repro.service.SimRankService`
   in this interpreter (requests still round-trip through the protocol-v2
   envelope and frame codecs, so nothing is faked);
2. **subprocess** — the client spawns ``repro serve`` as a child process and
   speaks v2 JSONL to it over pipes: hello handshake, id-correlated
   requests, chunked ``partial``/``done`` streaming, and a clean
   ``shutdown``.

The tour exercises both planes: the four query kinds (single-pair,
single-source — once monolithic, once streamed in chunks — top-k, and
all-pairs) and the control operations (ping, open/list/close datasets,
stats, describe).  At the end it checks the two transports returned
identical values, which is the client library's core promise.

Run with:

    PYTHONPATH=src python examples/client_quickstart.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro.engine import BackendConfig
from repro.service import ServiceConfig, SimRankClient


def tour(client: SimRankClient, label: str) -> dict:
    """Run the full protocol tour; return the values for parity checking."""
    print(f"\n=== {label} ===")
    hello = client.hello()
    print(f"hello: protocol v{hello['protocol']}, "
          f"{len(hello['backends'])} backends, registry {hello['registry'][:4]}...")
    print(f"ping: {client.ping()}")

    opened = client.open_dataset("GrQc")
    print(f"open_dataset: {opened['num_nodes']} nodes, "
          f"{opened['num_edges']} edges")

    pair = client.single_pair("GrQc", 1, 2)
    print(f"s(1, 2) = {pair:.6f}")

    monolithic = client.single_source("GrQc", 0)
    streamed = client.single_source("GrQc", 0, chunk_size=8)
    assert streamed == monolithic, "chunking must not change the answer"
    print(f"single_source(0): {len(streamed)} scores "
          "(streamed in 8-score chunks, reassembled exactly)")

    top = client.top_k("GrQc", 3, k=5)
    print("top-5 for node 3: "
          + ", ".join(f"{e['node']}:{e['score']:.4f}" for e in top))

    matrix = client.all_pairs("GrQc", chunk_size=16)
    print(f"all_pairs: {len(matrix)}x{len(matrix[0])} matrix, streamed row-wise")

    print(f"open sessions: {client.list_datasets()}")
    described = client.describe("GrQc")
    for key, engine in described["engines"].items():
        print(f"describe[{key}]: backend={engine['backend']} "
              f"cached={engine['cached_vectors']} "
              f"queries={engine['statistics']['total_queries']}")
    totals = client.stats()["totals"]
    print(f"stats: {totals['total_queries']} queries, "
          f"{totals['cache_hits']} cache hits")
    print(f"close_dataset: {client.close_dataset('GrQc')}")
    return {"pair": pair, "single_source": monolithic, "top": top,
            "matrix": matrix}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset stand-in scale (default: 0.05)")
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    with SimRankClient.in_process(
        config=ServiceConfig(
            scale=args.scale,
            seed=args.seed,
            backend_config=BackendConfig(epsilon=args.epsilon, seed=args.seed),
        )
    ) as local:
        local_values = tour(local, "in-process transport")

    with SimRankClient.connect(
        scale=args.scale, epsilon=args.epsilon, seed=args.seed
    ) as remote:
        remote_values = tour(remote, "subprocess transport (repro serve child)")

    assert local_values == remote_values, "transports diverged!"
    print("\nboth transports returned identical values — parity holds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
