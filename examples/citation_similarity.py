#!/usr/bin/env python3
"""Find related papers in a citation graph with single-source SimRank.

This mirrors the paper's motivating use case of link-based similarity search
(Section 1): given one paper in a citation network, rank the other papers by
SimRank.  Two papers are similar when they are cited by similar sets of
papers — the recursive definition SimRank captures and plain co-citation
counting does not.

The citation network is synthesised with the copying model (new papers copy a
fraction of the references of an existing "prototype" paper), which produces
the skewed citation counts and topical clusters of real citation graphs.  The
script compares SLING's ranking against the exact power-method ranking and
against a naive co-citation baseline.

Run with:

    python examples/citation_similarity.py [--papers 400] [--query 123]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import PowerMethod
from repro.engine import BackendConfig
from repro.graphs import generators
from repro.service import ServiceConfig, SimRankService, TopKQuery

DATASET = "citations"


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--papers", type=int, default=400)
    parser.add_argument("--references-per-paper", type=int, default=6)
    parser.add_argument("--query", type=int, default=250)
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def co_citation_scores(graph, query: int) -> np.ndarray:
    """Baseline: count papers that cite both the query and the candidate."""
    citers_of_query = set(graph.in_neighbors(query).tolist())
    scores = np.zeros(graph.num_nodes)
    for candidate in graph.nodes():
        if candidate == query:
            continue
        citers = set(graph.in_neighbors(candidate).tolist())
        scores[candidate] = len(citers & citers_of_query)
    return scores


def main() -> None:
    args = parse_args()

    print("Building a synthetic citation network (copying model) ...")
    graph = generators.copying_model(
        args.papers,
        args.references_per_paper,
        copy_probability=0.6,
        seed=args.seed,
    )
    print(f"  {graph!r}")
    query = args.query % graph.num_nodes
    print(f"  query paper: {query} (cited {graph.in_degree(query)} times)")

    print(f"Opening a service session over the network (epsilon = {args.epsilon}) ...")
    service = SimRankService(
        ServiceConfig(
            backend="sling",
            backend_config=BackendConfig(epsilon=args.epsilon, seed=args.seed),
        )
    )
    session = service.open_dataset(DATASET, graph=graph)
    print(f"  {session.engine().backend.index.build_statistics.summary()}")

    print(f"Top-{args.top} related papers according to SLING:")
    result = service.execute(TopKQuery(DATASET, node=query, k=args.top))
    if not result.ok:
        raise SystemExit(f"query failed: {result.error}")
    print(f"  (answered by {result.backend!r} in {1000 * result.seconds:.2f} ms)")
    for entry in result.value:
        print(f"  #{entry['rank']:2d}: paper {entry['node']:4d}  "
              f"SimRank {entry['score']:.4f}")
    sling_ranking = [(entry["node"], entry["score"]) for entry in result.value]

    print("Cross-checking against the exact power-method ranking ...")
    truth = PowerMethod(graph, num_iterations=30).build().single_source(query)
    truth[query] = -1.0
    exact_top = set(np.argsort(-truth)[: args.top].tolist())
    sling_top = {paper for paper, _ in sling_ranking}
    overlap = len(exact_top & sling_top)
    print(f"  overlap with the exact top-{args.top}: {overlap}/{args.top}")

    print("Comparing with the naive co-citation baseline ...")
    co_citation = co_citation_scores(graph, query)
    co_citation_top = set(np.argsort(-co_citation)[: args.top].tolist())
    print(
        f"  co-citation overlap with the exact top-{args.top}: "
        f"{len(co_citation_top & exact_top)}/{args.top}"
    )
    print(
        "  (SimRank also surfaces papers with no direct co-citations, which "
        "is exactly why the recursive definition is preferred.)"
    )


if __name__ == "__main__":
    main()
